"""Cost model for the NF2 planner.

Costs are expressed in *page-read equivalents*, the unit the storage
engine's :class:`~repro.storage.engine.ScanStats` reports and the
currency of the paper's §2 search-space argument: a page read costs 1,
touching a heap record a small fraction of that, and pure in-memory
tuple work less still.  The model only has to rank alternatives (index
scan vs heap scan, which join side to build), not predict wall time.

Selectivity estimation works on the catalog statistics of
:mod:`repro.planner.stats`:

- ``A CONTAINS v`` matches the NFR tuples whose A-component holds the
  atom ``v``.  With ``d`` distinct atoms and mean set size ``s``, an
  average atom appears in ``count * s / d`` tuples, so the selectivity
  is ``s / d``.
- ``A = v`` (singleton equality) is at most CONTAINS selectivity and is
  estimated as ``1 / d``.
- ``A = {v1..vk}`` (component equality) requires all ``k`` atoms
  together plus exact extent, estimated as the CONTAINS product capped
  by ``1 / d``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query import ast
from repro.planner.stats import RelationStats

#: Cost of touching one heap page resident in memory (a buffer-pool
#: hit, or any page of an in-memory store).
PAGE_READ_COST = 1.0
#: *Additional* cost when the page touch misses the buffer pool and
#: goes to the database file — a disk-backed page read is priced
#: ``PAGE_READ_COST + DISK_READ_COST``.
DISK_READ_COST = 4.0
#: Cost of decoding/visiting one heap record.
RECORD_COST = 0.02
#: Cost of processing one in-memory NFR tuple.
TUPLE_CPU_COST = 0.005
#: Cost of one AtomIndex probe.
INDEX_LOOKUP_COST = 0.1
#: Cost of one RangeIndex window probe (two bisections plus the union
#: of the covered posting lists; priced above a hash probe).
RANGE_LOOKUP_COST = 0.2
#: Selectivity assumed when no statistics are available.
DEFAULT_SELECTIVITY = 0.25
#: Fixed price of standing up one shard worker (fork + pipe plumbing).
#: Keeps tiny relations on the serial path: fanning out only wins once
#: the per-shard scan work dwarfs the startup.
PARALLEL_STARTUP_COST = 5.0
#: Per-row price of crossing the worker/coordinator boundary (pickle,
#: pipe transfer, dictionary remap).
PARALLEL_MERGE_COST = 0.002
#: Startup price per shard worker when the connection's persistent pool
#: is already warm: a heartbeat plus a job-spec pickle over an existing
#: pipe — an order of magnitude below a fork.  Lets parallel plans win
#: at much smaller cardinalities once the pool exists.
PARALLEL_WARM_STARTUP_COST = 0.5
#: Selectivity assumed for a one-sided inequality with no usable key
#: statistics (an average literal splits the domain in ~half, but
#: queries skew selective; BETWEEN is assumed to halve it again).
DEFAULT_RANGE_SELECTIVITY = 0.3


@dataclass(frozen=True)
class CostEstimate:
    """Estimated output rows, total cost and pages read of one operator
    (inclusive of its inputs)."""

    rows: float
    cost: float
    pages: float = 0.0


def selectivity(cond: ast.Condition, stats: RelationStats | None) -> float:
    """Estimated fraction of NFR tuples satisfying ``cond``."""
    if isinstance(cond, ast.And):
        return selectivity(cond.left, stats) * selectivity(
            cond.right, stats
        )
    attr = stats.attribute(cond.attribute) if stats is not None else None
    if attr is None or attr.distinct_atoms == 0:
        return DEFAULT_SELECTIVITY
    d = attr.distinct_atoms
    if isinstance(cond, ast.Contains):
        return min(1.0, max(attr.avg_set_size, 1.0) / d)
    if isinstance(cond, ast.SingletonEquals):
        return min(1.0, 1.0 / d)
    if isinstance(cond, ast.ComponentEquals):
        per_atom = min(1.0, max(attr.avg_set_size, 1.0) / d)
        return min(per_atom ** len(cond.values), 1.0 / d)
    if isinstance(cond, ast.Comparison):
        return DEFAULT_RANGE_SELECTIVITY
    if isinstance(cond, ast.Between):
        return DEFAULT_RANGE_SELECTIVITY / 2
    return DEFAULT_SELECTIVITY


def conjunct_selectivity(
    conjuncts: tuple[ast.Condition, ...], stats: RelationStats | None
) -> float:
    """Product of the conjunct selectivities (independence assumption)."""
    sel = 1.0
    for c in conjuncts:
        sel *= selectivity(c, stats)
    return sel


def frame_miss_fraction(frames: int, pages: int) -> float:
    """Steady-state buffer-pool miss estimate for a relation of
    ``pages`` pages under a budget of ``frames``: a relation that fits
    in the frame budget is expected to be fully resident once warm
    (the BUF-HIT regime), a larger one misses in proportion to the
    shortfall, ``1 - frames/pages``."""
    if pages <= 0:
        return 0.0
    return max(0.0, 1.0 - frames / pages)


def miss_fraction(stats: RelationStats | None) -> float:
    """Estimated fraction of this relation's page touches that miss the
    buffer pool and hit the disk (0 for in-memory stores)."""
    if stats is None or not stats.disk_backed:
        return 0.0
    return frame_miss_fraction(stats.buffer_frames, stats.pages)


def raw_page_touch_cost(
    pages: float, frames: int, relation_pages: int, disk_backed: bool
) -> float:
    """Cost of ``pages`` page touches on a relation of
    ``relation_pages`` pages: a buffer hit per touch, plus the disk
    surcharge for the estimated miss fraction.  The single place the
    hit/miss pricing formula lives — both the statistics-based and the
    stats-free planner paths go through it."""
    miss = (
        frame_miss_fraction(frames, relation_pages) if disk_backed else 0.0
    )
    return pages * (PAGE_READ_COST + miss * DISK_READ_COST)


def page_touch_cost(pages: float, stats: RelationStats | None) -> float:
    """:func:`raw_page_touch_cost` driven by a relation's statistics."""
    if stats is None:
        return pages * PAGE_READ_COST
    return raw_page_touch_cost(
        pages, stats.buffer_frames, stats.pages, stats.disk_backed
    )


def memory_scan_cost(stats: RelationStats | None) -> CostEstimate:
    rows = float(stats.tuple_count) if stats is not None else 100.0
    return CostEstimate(rows=rows, cost=rows * TUPLE_CPU_COST, pages=0.0)


def heap_scan_cost(
    stats: RelationStats, decode_fraction: float = 1.0
) -> CostEstimate:
    """Full heap scan: every page read, every record visited.

    ``decode_fraction`` discounts the per-record CPU charge when the
    scan skip-decodes only part of each record (needed attributes /
    degree); page reads are unaffected — pages are read whole.
    """
    return CostEstimate(
        rows=float(stats.tuple_count),
        cost=page_touch_cost(float(stats.pages), stats)
        + stats.records * RECORD_COST * decode_fraction,
        pages=float(stats.pages),
    )


def shard_fraction_stats(
    stats: RelationStats, nshards: int
) -> RelationStats:
    """Statistics of one shard of a hash-partitioned relation: an even
    1/N slice of the volume counts.  Per-attribute atom statistics are
    kept whole — selectivity formulas are ratios, and hash partitioning
    keeps value distributions representative per shard."""
    if nshards <= 1:
        return stats
    from dataclasses import replace

    scale = 1.0 / nshards
    return replace(
        stats,
        tuple_count=max(1, round(stats.tuple_count * scale)),
        flat_count=max(1, round(stats.flat_count * scale)),
        pages=max(1, round(stats.pages * scale)) if stats.pages else 0,
        records=(
            max(1, round(stats.records * scale)) if stats.records else 0
        ),
    )


def parallel_startup_cost(nshards: int, warm: bool) -> float:
    """Price of standing the shard workers up for one query: a fork
    apiece when cold, a pipe round-trip apiece when the connection's
    persistent pool is already live."""
    per_worker = PARALLEL_WARM_STARTUP_COST if warm else PARALLEL_STARTUP_COST
    return nshards * per_worker


def parallel_scan_cost(
    serial: CostEstimate, nshards: int, warm: bool = False
) -> CostEstimate:
    """Fan a serial scan out over N shard workers: the critical path is
    ~1/N of the scan work, paid for with per-worker startup and the
    per-row merge toll at the coordinator."""
    return CostEstimate(
        rows=serial.rows,
        cost=serial.cost / nshards
        + parallel_startup_cost(nshards, warm)
        + serial.rows * PARALLEL_MERGE_COST,
        pages=serial.pages,
    )


def shard_join_cost(
    sharded: "list[CostEstimate]",
    broadcast: CostEstimate | None,
    out_rows: float,
    nshards: int,
    warm: bool = False,
) -> CostEstimate:
    """Run the whole hash join inside N shard workers.

    ``sharded`` holds the *parallel* estimates of the co-resident
    side(s) — each already charges startup and a per-input-row merge
    toll; a shard-local join never pays that input toll (batches stay
    inside the worker) and stands the worker set up once, so the toll is
    refunded and startup re-charged a single time.  ``broadcast`` is the
    serial estimate of a side shipped whole into every worker (None in
    the co-partitioned case); it pays its own cost plus N-way shipping.
    The join CPU — build + probe + compose — divides by N, and only the
    *joined* rows pay the coordinator merge toll."""
    startup = parallel_startup_cost(nshards, warm)
    cost = startup
    rows_in = 0.0
    pages = 0.0
    for est in sharded:
        cost += est.cost - startup - est.rows * PARALLEL_MERGE_COST
        rows_in += est.rows
        pages += est.pages
    if broadcast is not None:
        cost += broadcast.cost + broadcast.rows * PARALLEL_MERGE_COST * nshards
        rows_in += broadcast.rows
        pages += broadcast.pages
    cost += (rows_in + out_rows) * TUPLE_CPU_COST / nshards
    cost += out_rows * PARALLEL_MERGE_COST
    return CostEstimate(rows=out_rows, cost=cost, pages=pages)


def index_scan_cost(
    stats: RelationStats,
    conjuncts: tuple[ast.Condition, ...],
    probes: int,
    decode_fraction: float = 1.0,
) -> CostEstimate:
    """Index probe + candidate-page reads + residual recheck.

    Matching records may each live on a distinct page, so the page
    estimate is ``min(pages, expected matches)`` — the pessimistic
    uniform-placement bound.  ``decode_fraction`` discounts the
    per-record decode charge as in :func:`heap_scan_cost`.
    """
    sel = conjunct_selectivity(conjuncts, stats)
    matches = sel * stats.records
    pages = min(float(stats.pages), matches) if stats.pages else 0.0
    cost = (
        probes * INDEX_LOOKUP_COST
        + page_touch_cost(pages, stats)
        + matches * RECORD_COST * decode_fraction
    )
    return CostEstimate(rows=sel * stats.tuple_count, cost=cost, pages=pages)


def range_scan_cost(
    stats: RelationStats,
    match_fraction: float,
    residual_selectivity: float,
    decode_fraction: float = 1.0,
) -> CostEstimate:
    """RangeIndex window probe + candidate-page reads + residual
    recheck.  ``match_fraction`` estimates the fraction of records
    whose indexed component intersects the window (from the index's
    sorted keys for literal bounds, a default for parameters);
    ``residual_selectivity`` is the full conjunction's selectivity, the
    operator's output-row estimate.  Page maths mirror
    :func:`index_scan_cost`."""
    matches = min(1.0, match_fraction) * stats.records
    pages = min(float(stats.pages), matches) if stats.pages else 0.0
    cost = (
        RANGE_LOOKUP_COST
        + page_touch_cost(pages, stats)
        + matches * RECORD_COST * decode_fraction
    )
    return CostEstimate(
        rows=residual_selectivity * stats.tuple_count,
        cost=cost,
        pages=pages,
    )


def join_output_rows(
    left_rows: float,
    right_rows: float,
    left_stats: RelationStats | None,
    right_stats: RelationStats | None,
    shared: tuple[str, ...],
) -> float:
    """Standard equi-join estimate: |L| * |R| / max distinct key count
    over the shared attributes (cross product when nothing is shared)."""
    if not shared:
        return left_rows * right_rows
    max_distinct = 1
    for name in shared:
        for stats in (left_stats, right_stats):
            attr = stats.attribute(name) if stats is not None else None
            if attr is not None and attr.distinct_atoms > max_distinct:
                max_distinct = attr.distinct_atoms
    return left_rows * right_rows / max_distinct
