"""The planner: AST expression -> rewritten logical plan -> physical plan.

Planning proceeds in the three classic stages:

1. **Lower** the AST into the logical IR (:mod:`repro.planner.logical`);
2. **Rewrite** with the law-derived rules (:mod:`repro.planner.rules`),
   pushing selections toward the scans, pruning projections and folding
   contradictions;
3. **Choose physical operators** bottom-up with the statistics and cost
   model: a ``Select`` sitting directly on a ``Scan`` becomes an
   :class:`~repro.planner.physical.IndexScan` when the relation's paged
   store has an :class:`~repro.storage.index.AtomIndex` and the model
   prices the probe below a full
   :class:`~repro.planner.physical.HeapScan`; joins become hash joins;
   everything else pipelines.

Relations without an open paged store are planned as
:class:`~repro.planner.physical.MemoryScan` (no page I/O to save);
``ANALYZE name`` opens the store and collects statistics, after which
index plans become available.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.nfr_relation import NFRelation
from repro.errors import PlanError
from repro.planner import cost as costs
from repro.planner import logical as L
from repro.planner import physical as P
from repro.planner.explain import render_plan
from repro.planner.rules import RewriteContext, rewrite
from repro.planner.stats import RelationStats
from repro.query import ast
from repro.query.params import ParamSlots
from repro.storage.engine import NFRStore, ScanStats
from repro.storage.parallel import parallel_available
from repro.util.counters import OperationCounter, OperationDelta

if TYPE_CHECKING:  # pragma: no cover
    from repro.query.catalog import Catalog

#: Cumulative count of :func:`plan` invocations this process.  The plan
#: cache benchmarks diff this counter to prove a prepared statement
#: plans once, however many times it executes.
_plan_invocations = 0


def plan_invocations() -> int:
    """How many times :func:`plan` has run in this process (a monotone
    counter; diff two readings to count planner work in a window)."""
    return _plan_invocations


class PhysicalPlan:
    """A planned query: the physical operator tree plus its logical
    ancestry, ready to execute.

    ``params`` is the plan's :class:`~repro.query.params.ParamSlots` —
    for a parameterized statement, bind values there
    (``plan.params.bind(binding)``) before executing; the same plan
    object then serves every subsequent binding."""

    def __init__(
        self,
        root: P.PhysicalOp,
        logical: L.LogicalPlan,
        params: ParamSlots | None = None,
    ):
        self.root = root
        self.logical = logical
        self.params = params if params is not None else ParamSlots()
        self.executed = False
        #: Plan-level §4 operation counter, shared by every operator in
        #: the tree (the paper's complexity measure, reported per
        #: query).  Cumulative across executions of a cached plan —
        #: callers diff :meth:`ops_snapshot` readings around a run.
        self.ops = OperationCounter()
        stack = [root]
        while stack:
            op = stack.pop()
            op.ops = self.ops
            stack.extend(op.children())

    def execute(self) -> NFRelation:
        result = self.root.execute()
        self.executed = True
        return result

    def ops_snapshot(self) -> OperationDelta:
        """Immutable reading of the plan's cumulative operation tallies."""
        return self.ops.snapshot()

    def explain(
        self, analyze: bool = False, ops: OperationDelta | None = None
    ) -> str:
        return render_plan(self.root, analyze=analyze, ops=ops)

    def scan_stats(self) -> ScanStats:
        """Aggregate I/O accounting of the last execution."""
        return ScanStats(
            page_reads=self.root.total_pages_read(),
            records_visited=0,
            flats_produced=0,
            index_lookups=self.root.total_index_lookups(),
            bytes_decoded=self.root.total_bytes_decoded(),
            disk_reads=self.root.total_disk_reads(),
            pages_written=self.root.total_pages_written(),
            wal_bytes=self.root.total_wal_bytes(),
        )


def plan(
    node: "ast.Expression",
    catalog: "Catalog",
    use_index: bool | None = None,
    params: ParamSlots | None = None,
) -> PhysicalPlan:
    """Plan an AST expression against ``catalog``.

    ``use_index`` forces index scans on (True) or off (False); the
    default lets the cost model decide.  ``params`` supplies the slot
    context late-bound predicates read at execution time (one is created
    when omitted); expressions containing parameters must have values
    bound there before the plan runs.
    """
    global _plan_invocations
    _plan_invocations += 1
    slots = params if params is not None else ParamSlots()
    logical = L.lower(node)
    ctx = _context(catalog)
    logical = rewrite(logical, ctx)
    builder = _Builder(catalog, ctx, use_index, slots)
    return PhysicalPlan(builder.build(logical), logical, slots)


def _context(catalog: "Catalog") -> RewriteContext:
    def scan_names(name: str) -> tuple[str, ...]:
        return catalog.get(name).schema.names

    def scan_flat_on(name: str, attribute: str) -> bool:
        stats = catalog.stats_for(name)
        attr = stats.attribute(attribute)
        return attr is not None and attr.is_flat

    return RewriteContext(scan_names, scan_flat_on)


class _Builder:
    """Bottom-up physical operator selection."""

    def __init__(
        self,
        catalog: "Catalog",
        ctx: RewriteContext,
        use_index: bool | None,
        slots: ParamSlots,
    ):
        self.catalog = catalog
        self.ctx = ctx
        self.use_index = use_index
        self.slots = slots

    def build(self, node: L.LogicalPlan) -> P.PhysicalOp:
        if isinstance(node, L.LEmpty):
            return P.EmptyResult(node.names)
        if isinstance(node, L.LScan):
            return self._scan(node.name, conjuncts=())
        if isinstance(node, L.LSelect) and isinstance(node.source, L.LScan):
            return self._scan(node.source.name, node.conjuncts)
        if isinstance(node, L.LSelect):
            return self._filter_op(node, self.build(node.source))
        if isinstance(node, L.LProject):
            # A projection narrows what the scans below need to decode:
            # push the needed-attribute set down the streaming chain.
            child = self._build_narrowed(
                node.source, frozenset(node.attributes)
            )
            est = costs.CostEstimate(
                rows=child.est.rows,
                cost=child.est.cost
                + child.est.rows * costs.TUPLE_CPU_COST,
                pages=child.est.pages,
            )
            return P.ProjectOp(child, node.attributes, est)
        if isinstance(node, L.LNest):
            child = self.build(node.source)
            # Nesting merges tuples that agree elsewhere; without
            # grouping statistics assume a mild reduction per attribute.
            rows = child.est.rows * (0.7 ** len(node.attributes))
            est = costs.CostEstimate(
                rows=rows,
                cost=child.est.cost
                + child.est.rows
                * costs.TUPLE_CPU_COST
                * len(node.attributes),
                pages=child.est.pages,
            )
            return P.NestOp(child, node.attributes, est)
        if isinstance(node, L.LUnnest):
            return self._unnest_op(node, self.build(node.source))
        if isinstance(node, L.LCanonical):
            child = self.build(node.source)
            stats = self._subtree_stats(node.source)
            flats = (
                float(stats.flat_count)
                if stats is not None
                else child.est.rows * 2
            )
            est = costs.CostEstimate(
                rows=child.est.rows,
                cost=child.est.cost + flats * costs.TUPLE_CPU_COST * 2,
                pages=child.est.pages,
            )
            return P.CanonicalOp(child, node.order, est)
        if isinstance(node, L.LFlatten):
            child = self.build(node.source)
            stats = self._subtree_stats(node.source)
            flats = (
                float(stats.flat_count)
                if stats is not None
                else child.est.rows * 2
            )
            est = costs.CostEstimate(
                rows=flats,
                cost=child.est.cost + flats * costs.TUPLE_CPU_COST,
                pages=child.est.pages,
            )
            return P.FlattenOp(child, est)
        if isinstance(node, (L.LJoin, L.LFlatJoin)):
            left = self.build(node.left)
            right = self.build(node.right)
            shared = tuple(
                n
                for n in self.ctx.names(node.left)
                if n in self.ctx.names(node.right)
            )
            rows = costs.join_output_rows(
                left.est.rows,
                right.est.rows,
                self._subtree_stats(node.left),
                self._subtree_stats(node.right),
                shared,
            )
            est = costs.CostEstimate(
                rows=rows,
                cost=left.est.cost
                + right.est.cost
                + (left.est.rows + right.est.rows + rows)
                * costs.TUPLE_CPU_COST,
                pages=left.est.pages + right.est.pages,
            )
            shard_op = self._try_shard_join(
                node, left, right, shared, rows, est
            )
            if shard_op is not None:
                return shard_op
            op = P.HashJoin if isinstance(node, L.LJoin) else P.FlatHashJoin
            return op(left, right, est)
        if isinstance(node, (L.LUnion, L.LDifference)):
            left = self.build(node.left)
            right = self.build(node.right)
            rows = (
                left.est.rows + right.est.rows
                if isinstance(node, L.LUnion)
                else left.est.rows
            )
            est = costs.CostEstimate(
                rows=rows,
                cost=left.est.cost
                + right.est.cost
                + (left.est.rows + right.est.rows)
                * costs.TUPLE_CPU_COST,
                pages=left.est.pages + right.est.pages,
            )
            op = P.UnionOp if isinstance(node, L.LUnion) else P.DifferenceOp
            return op(left, right, est)
        raise PlanError(f"unknown logical node {node!r}")

    # -- streaming-chain helpers -----------------------------------------------

    def _build_narrowed(
        self, node: L.LogicalPlan, needed: frozenset[str]
    ) -> P.PhysicalOp:
        """Build ``node`` knowing only ``needed`` attributes survive the
        projection above: the set widens through selects (predicate
        touches) and unnests (the unnested attribute) and lands on the
        scan, where it drives the skip-decoder.  Operators that read
        every attribute (nest, canonical, joins, set ops) fall back to
        the full build."""
        if isinstance(node, L.LScan):
            return self._scan(node.name, (), needed=needed)
        if isinstance(node, L.LSelect):
            widened = needed
            for c in node.conjuncts:
                widened |= L.condition_touches(c)
            if isinstance(node.source, L.LScan):
                return self._scan(
                    node.source.name, node.conjuncts, needed=widened
                )
            return self._filter_op(
                node, self._build_narrowed(node.source, widened)
            )
        if isinstance(node, L.LUnnest):
            child = self._build_narrowed(
                node.source, needed | {node.attribute}
            )
            return self._unnest_op(node, child)
        return self.build(node)

    def _filter_op(self, node: L.LSelect, child: P.PhysicalOp) -> P.Filter:
        predicate = L.compile_conjuncts(node.conjuncts, self.slots)
        sel = costs.conjunct_selectivity(
            node.conjuncts, self._subtree_stats(node.source)
        )
        est = costs.CostEstimate(
            rows=child.est.rows * sel,
            cost=child.est.cost + child.est.rows * costs.TUPLE_CPU_COST,
            pages=child.est.pages,
        )
        return P.Filter(
            child,
            predicate,
            est,
            conjuncts=node.conjuncts,
            slots=self.slots,
        )

    def _unnest_op(
        self, node: L.LUnnest, child: P.PhysicalOp
    ) -> P.UnnestOp:
        stats = self._subtree_stats(node.source)
        attr = (
            stats.attribute(node.attribute) if stats is not None else None
        )
        factor = max(attr.avg_set_size, 1.0) if attr else 2.0
        est = costs.CostEstimate(
            rows=child.est.rows * factor,
            cost=child.est.cost
            + child.est.rows * factor * costs.TUPLE_CPU_COST,
            pages=child.est.pages,
        )
        return P.UnnestOp(child, node.attribute, est)

    # -- access-path selection -------------------------------------------------

    def _scan(
        self,
        name: str,
        conjuncts: tuple["ast.Condition", ...],
        needed: frozenset[str] | None = None,
    ) -> P.PhysicalOp:
        store = self.catalog.store_if_open(name)
        nshards = 1
        pruned = False
        if store is not None and getattr(store, "is_sharded", False):
            nshards = store.nshards
            routed = self._route_shards(store, conjuncts)
            if routed == ():
                # Two partition-attribute atoms routing to different
                # shards: no stored record's partition component can
                # contain both — statically empty.
                return P.EmptyResult(tuple(store.schema.names))
            if routed is not None:
                # Equality/containment on the partition attribute pins
                # the scan to one shard: plan against that shard's
                # plain store (its own heap, index and range index),
                # reading 1/N of the relation.
                store = store.shards[routed[0]]
                pruned = True
        fan_out = nshards > 1 and not pruned and parallel_available()
        predicate = (
            L.compile_conjuncts(conjuncts, self.slots) if conjuncts else None
        )
        decode: tuple[str, ...] | None = None
        decode_fraction = 1.0
        if store is not None and needed is not None:
            ordered = tuple(
                n for n in store.schema.names if n in needed
            )
            if 0 < len(ordered) < store.schema.degree:
                decode = ordered
                decode_fraction = len(ordered) / store.schema.degree

        if predicate is None:
            # No access-path decision to make: don't pay for (or
            # trigger collection of) statistics.
            if store is None:
                relation = self.catalog.get(name)
                rows = float(relation.cardinality)
                return P.MemoryScan(
                    relation,
                    name,
                    costs.CostEstimate(
                        rows=rows, cost=rows * costs.TUPLE_CPU_COST
                    ),
                )
            pages = store.heap.page_count
            records = store.heap.record_count
            page_cost = costs.raw_page_touch_cost(
                float(pages),
                getattr(store.heap.pager, "capacity", 0),
                pages,
                getattr(store.heap.pager, "is_durable", False),
            )
            est = costs.CostEstimate(
                rows=float(records),
                cost=page_cost
                + records * costs.RECORD_COST * decode_fraction,
                pages=float(pages),
            )
            if fan_out:
                scan = P.ParallelShardScan(
                    store,
                    name,
                    costs.parallel_scan_cost(
                        est, nshards, self.catalog.pool_is_warm(nshards)
                    ),
                    needed=decode,
                )
                scan.catalog = self.catalog
                return scan
            return P.HeapScan(store, name, est, needed=decode)

        stats = self.catalog.stats_for(name)
        if pruned:
            # Cost the access paths against one shard's slice of the
            # relation (the statistics describe the whole of it).
            stats = costs.shard_fraction_stats(stats, nshards)
        if store is None:
            relation = self.catalog.get(name)
            base = costs.memory_scan_cost(stats)
            sel = costs.conjunct_selectivity(conjuncts, stats)
            est = costs.CostEstimate(
                rows=base.rows * sel, cost=base.cost, pages=0.0
            )
            scan = P.MemoryScan(relation, name, base)
            return P.Filter(
                scan,
                predicate,
                est,
                conjuncts=conjuncts,
                slots=self.slots,
            )

        heap_est = costs.heap_scan_cost(stats, decode_fraction)
        if fan_out:
            # The heap alternative for an unpruned sharded store is the
            # fan-out scan; index plans must beat its critical path.
            heap_est = costs.parallel_scan_cost(
                heap_est, nshards, self.catalog.pool_is_warm(nshards)
            )
        if conjuncts and self.use_index is not False:
            # Window conjuncts contribute no probe atoms (no single atom
            # is implied), so a pure-inequality predicate must not fall
            # into an atom-less IndexScan — lookup_all([]) would return
            # the empty candidate set and silently drop every row.
            atoms: list[tuple[str, object]] = []
            for c in conjuncts:
                atoms.extend(L.indexable_atoms(c))
            if store.index is not None and atoms:
                idx_est = costs.index_scan_cost(
                    stats, conjuncts, len(atoms), decode_fraction
                )
                if self.use_index or idx_est.cost < heap_est.cost:
                    assert predicate is not None
                    return P.IndexScan(
                        store,
                        name,
                        atoms,
                        predicate,
                        idx_est,
                        needed=decode,
                        slots=self.slots,
                        conjuncts=conjuncts,
                    )
            if store.rindex is not None:
                ranged = self._range_candidate(
                    store, stats, conjuncts, decode_fraction
                )
                if ranged is not None:
                    bounds, rng_est = ranged
                    if (
                        self.use_index and not atoms
                    ) or rng_est.cost < heap_est.cost:
                        assert predicate is not None
                        return P.RangeScan(
                            store,
                            name,
                            bounds,
                            predicate,
                            rng_est,
                            needed=decode,
                            slots=self.slots,
                            conjuncts=conjuncts,
                        )

        scan_cls = P.ParallelShardScan if fan_out else P.HeapScan
        if predicate is not None:
            sel = costs.conjunct_selectivity(conjuncts, stats)
            est = costs.CostEstimate(
                rows=heap_est.rows * sel,
                cost=heap_est.cost,
                pages=heap_est.pages,
            )
            scan = scan_cls(
                store,
                name,
                est,
                predicate=predicate,
                needed=decode,
                conjuncts=conjuncts,
                slots=self.slots,
            )
        else:
            scan = scan_cls(store, name, heap_est, needed=decode)
        if fan_out:
            scan.catalog = self.catalog
        return scan

    def _try_shard_join(
        self,
        node: L.LogicalPlan,
        left: P.PhysicalOp,
        right: P.PhysicalOp,
        shared: tuple[str, ...],
        rows: float,
        coord_est: costs.CostEstimate,
    ) -> P.PhysicalOp | None:
        """A shard-local join plan when co-location can be proved and
        the model prices it below the coordinator join, else None.

        Two provably correct shapes (see
        :class:`~repro.planner.physical._ShardJoinPlumbing`):

        - **Co-partitioned** — both children are fan-out scans of stores
          hash-partitioned on the *same* attribute with the *same* shard
          count, and that attribute is a join (shared) attribute.  The
          NF2 join equates the whole shared component set-wise, so every
          matching pair agrees on its partition atoms and lands in the
          same shard; same for flats.
        - **Broadcast** — exactly one child is a fan-out scan; the other
          is materialised at the coordinator and shipped whole into
          every worker (priced by ANALYZE row estimates).  Pairwise
          joins distribute over the sharded side's tuple-level union
          regardless of its partition attribute.

        The pruned-/pinned-scan, ``REPRO_PARALLEL=0`` and single-shard
        cases never reach here: they plan as plain scans, not
        :class:`~repro.planner.physical.ParallelShardScan`."""
        left_ps = isinstance(left, P.ParallelShardScan)
        right_ps = isinstance(right, P.ParallelShardScan)
        if not (left_ps or right_ps):
            return None
        cls = (
            P.ParallelShardJoin
            if isinstance(node, L.LJoin)
            else P.ParallelShardFlatJoin
        )
        if left_ps and right_ps:
            ls, rs = left.store, right.store
            if (
                ls.nshards == rs.nshards
                and ls.partition_attr == rs.partition_attr
                and ls.partition_attr in shared
            ):
                nshards = ls.nshards
                est = costs.shard_join_cost(
                    [left.est, right.est],
                    None,
                    rows,
                    nshards,
                    self.catalog.pool_is_warm(nshards),
                )
                if est.cost < coord_est.cost:
                    return cls(
                        left,
                        right,
                        est,
                        shard_side="both",
                        catalog=self.catalog,
                    )
            # Sharded on different attributes or counts: broadcast the
            # smaller side into the larger side's workers.
            side = "left" if left.est.rows >= right.est.rows else "right"
        else:
            side = "left" if left_ps else "right"
        sharded, other = (
            (left, right) if side == "left" else (right, left)
        )
        nshards = sharded.store.nshards
        est = costs.shard_join_cost(
            [sharded.est],
            other.est,
            rows,
            nshards,
            self.catalog.pool_is_warm(nshards),
        )
        if est.cost < coord_est.cost:
            return cls(
                left, right, est, shard_side=side, catalog=self.catalog
            )
        return None

    def _route_shards(
        self, store, conjuncts: tuple["ast.Condition", ...]
    ) -> tuple[int, ...] | None:
        """Plan-time shard routing for a sharded store: the shard
        indices a conjunct list can be satisfied in, or None when it
        cannot prune (no literal partition-attribute atom).  Every
        :func:`~repro.planner.logical.indexable_atoms` pair is an atom a
        matching record's component must *contain*, and every stored
        partition atom routes to its own shard — so a partition-attr
        atom pins the scan, and two routing differently are
        unsatisfiable (``()``).  Parameter placeholders never prune at
        plan time (the cached plan must serve every binding); the store
        facade still prunes them per execution inside its probe
        streams."""
        pattr = store.partition_attr
        targets: set[int] = set()
        for c in conjuncts:
            for a, v in L.indexable_atoms(c):
                if a == pattr and not isinstance(v, ast.Parameter):
                    targets.add(store.shard_of(v))
        if not targets:
            return None
        if len(targets) > 1:
            return ()
        return (targets.pop(),)

    def _range_candidate(
        self,
        store: NFRStore,
        stats: RelationStats,
        conjuncts: tuple["ast.Condition", ...],
        decode_fraction: float,
    ) -> tuple[L.RangeBounds, costs.CostEstimate] | None:
        """The cheapest RangeIndex window the conjunct list offers, with
        its cost — None when no conjunct is a window predicate.  Two
        one-sided windows on the same attribute additionally offer their
        merged two-sided window, but only when the attribute is flat:
        with set-valued components two different atoms may witness the
        two sides, so the merged probe would drop matches."""
        by_attr: dict[str, list[L.RangeBounds]] = {}
        for c in conjuncts:
            b = L.comparison_bounds(c)
            if b is not None:
                by_attr.setdefault(b.attribute, []).append(b)
        if not by_attr:
            return None
        candidates: list[L.RangeBounds] = []
        for attribute, bs in by_attr.items():
            candidates.extend(bs)
            if len(bs) == 2:
                attr = stats.attribute(attribute)
                if attr is not None and attr.is_flat:
                    merged = L.merge_bounds(bs[0], bs[1])
                    if merged is not None:
                        candidates.append(merged)
        residual = costs.conjunct_selectivity(conjuncts, stats)
        best: tuple[L.RangeBounds, costs.CostEstimate] | None = None
        for b in candidates:
            est = costs.range_scan_cost(
                stats,
                self._bound_fraction(store, b),
                residual,
                decode_fraction,
            )
            if best is None or est.cost < best[1].cost:
                best = (b, est)
        return best

    def _bound_fraction(
        self, store: NFRStore, bounds: L.RangeBounds
    ) -> float:
        """Estimated fraction of records the window probe returns:
        the index's distinct-key fraction for literal bounds, a default
        for parameter placeholders (their values are unknown at plan
        time)."""
        if isinstance(bounds.low, ast.Parameter) or isinstance(
            bounds.high, ast.Parameter
        ):
            return costs.DEFAULT_RANGE_SELECTIVITY
        assert store.rindex is not None
        fraction = store.rindex.key_fraction(
            bounds.attribute,
            bounds.low,
            bounds.high,
            bounds.low_inclusive,
            bounds.high_inclusive,
        )
        if fraction is None:
            return costs.DEFAULT_RANGE_SELECTIVITY
        return fraction

    # -- statistics plumbing ---------------------------------------------------

    def _subtree_stats(self, node: L.LogicalPlan) -> RelationStats | None:
        """Statistics of the unique base relation under ``node``, when
        there is exactly one (estimates degrade gracefully otherwise)."""
        scans = _scan_names_in(node)
        if len(scans) == 1:
            return self.catalog.stats_for(next(iter(scans)))
        return None


def _scan_names_in(node: L.LogicalPlan) -> set[str]:
    if isinstance(node, L.LScan):
        return {node.name}
    out: set[str] = set()
    for child in node.children():
        out |= _scan_names_in(child)
    return out
