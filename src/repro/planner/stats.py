"""Catalog statistics for the cost-based planner (the ``ANALYZE`` pass).

:func:`collect_stats` walks one relation (and its paged
:class:`~repro.storage.engine.NFRStore`, when open) and produces a
:class:`RelationStats` snapshot: NFR tuple count, |R*|, per-attribute
distinct-atom counts and set-value cardinalities, page/record counts and
index availability.  These are exactly the quantities the paper's §2
search-space analysis ranges over — degree, cardinality and how much
composition has shrunk the tuple count — reused here as planner inputs.

Statistics are cached on the :class:`~repro.query.catalog.Catalog` and
invalidated by the store's mutation hook after every INSERT/DELETE/
UPDATE, so estimates never go stale after DML.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.core.nfr_relation import NFRelation

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.engine import NFRStore


@dataclass(frozen=True)
class AttributeStats:
    """Per-attribute facts of one relation."""

    name: str
    #: distinct atomic values appearing in any component
    distinct_atoms: int
    #: mean component (set-value) cardinality over NFR tuples
    avg_set_size: float
    #: largest component cardinality (1 == the relation is flat here)
    max_set_size: int

    @property
    def is_flat(self) -> bool:
        return self.max_set_size <= 1


@dataclass(frozen=True)
class RelationStats:
    """One relation's planner-facing statistics snapshot."""

    name: str
    #: NFR tuples (records in nfr mode)
    tuple_count: int
    #: |R*| estimate — sum of per-tuple flat expansion counts.  Exact
    #: for NFRs whose expansions partition R* (every relation reachable
    #: by composition/decomposition from 1NF, i.e. everything the
    #: catalog stores); an upper bound otherwise.  Computed
    #: arithmetically so ANALYZE never materialises R*.
    flat_count: int
    degree: int
    #: heap pages of the backing store (0 when none is open)
    pages: int
    #: heap records of the backing store (0 when none is open)
    records: int
    #: does an AtomIndex cover the backing store?
    indexed: bool
    #: backing-store mode ('1nf' / 'nfr'), or None when not paged
    mode: str | None
    attributes: Mapping[str, AttributeStats] = field(default_factory=dict)
    #: is the backing store on disk (buffer pool + file) rather than
    #: memory-resident?  Disk-backed page touches may miss the pool.
    disk_backed: bool = False
    #: buffer-pool frame budget shared by the database's stores
    #: (0 when not disk-backed) — the cost model estimates the miss
    #: fraction of a scan from frames vs relation pages.
    buffer_frames: int = 0

    def attribute(self, name: str) -> AttributeStats | None:
        return self.attributes.get(name)

    def render(self) -> str:
        """Human-readable summary (the output of ``ANALYZE name``)."""
        lines = [
            f"ANALYZE {self.name}: {self.tuple_count} NFR tuples, "
            f"{self.flat_count} flats, degree {self.degree}",
        ]
        if self.mode is not None:
            index_note = "AtomIndex" if self.indexed else "no index"
            disk_note = (
                f", disk-backed ({self.buffer_frames} buffer frames)"
                if self.disk_backed
                else ""
            )
            lines.append(
                f"  store: mode={self.mode}, {self.records} records on "
                f"{self.pages} pages, {index_note}{disk_note}"
            )
        else:
            lines.append("  store: (not paged — in-memory relation)")
        for a in self.attributes.values():
            lines.append(
                f"  {a.name}: {a.distinct_atoms} distinct atoms, "
                f"avg set size {a.avg_set_size:.2f}, "
                f"max {a.max_set_size}"
            )
        return "\n".join(lines)


def collect_stats(
    name: str,
    relation: NFRelation,
    store: "NFRStore | None" = None,
) -> RelationStats:
    """Compute a fresh :class:`RelationStats` for ``relation``."""
    atoms: dict[str, set] = {a: set() for a in relation.schema.names}
    size_sum: dict[str, int] = {a: 0 for a in relation.schema.names}
    size_max: dict[str, int] = {a: 0 for a in relation.schema.names}
    count = relation.cardinality
    for t in relation:
        for a in relation.schema.names:
            component = t[a]
            atoms[a].update(component)
            size_sum[a] += len(component)
            if len(component) > size_max[a]:
                size_max[a] = len(component)
    attributes = {
        a: AttributeStats(
            name=a,
            distinct_atoms=len(atoms[a]),
            avg_set_size=(size_sum[a] / count) if count else 0.0,
            max_set_size=size_max[a],
        )
        for a in relation.schema.names
    }
    return RelationStats(
        name=name,
        tuple_count=count,
        flat_count=relation.total_expansion_count(),
        degree=relation.degree,
        pages=store.heap.page_count if store is not None else 0,
        records=store.heap.record_count if store is not None else 0,
        indexed=store is not None and store.index is not None,
        mode=store.mode if store is not None else None,
        attributes=attributes,
        disk_backed=(
            store is not None and getattr(store.heap.pager, "is_durable", False)
        ),
        buffer_frames=(
            store.heap.pager.capacity
            if store is not None and getattr(store.heap.pager, "is_durable", False)
            else 0
        ),
    )
