"""Rendering of physical plans for ``EXPLAIN`` / ``EXPLAIN ANALYZE``.

``EXPLAIN`` shows the chosen physical operators with the cost model's
estimates; ``EXPLAIN ANALYZE`` additionally executes the plan and
appends what actually happened — rows produced, pages read and index
probes per operator, plus plan totals.  The result object renders
through :meth:`ExplainResult.to_table` so the CLI prints it exactly
like a relation.
"""

from __future__ import annotations

from repro.planner.physical import PhysicalOp


class ExplainResult:
    """The textual outcome of an EXPLAIN statement."""

    def __init__(self, text: str):
        self.text = text

    def to_table(self, title: str | None = None) -> str:
        del title
        return self.text

    def __str__(self) -> str:
        return self.text

    def __repr__(self) -> str:
        return f"ExplainResult({self.text.splitlines()[0]!r}...)"


def render_plan(root: PhysicalOp, analyze: bool = False) -> str:
    """Render an operator tree, one node per line, estimates (and
    actuals, after execution) in parentheses."""
    lines = ["QUERY PLAN"]
    _render(root, 0, analyze, lines)
    if analyze:
        total = (
            f"total: pages read={root.total_pages_read()}, "
            f"index lookups={root.total_index_lookups()}, "
            f"bytes decoded={root.total_bytes_decoded()}"
        )
        # Physical layer, shown only when a durable store was touched:
        # disk reads split buffer-pool misses out of the page touches;
        # pages written / wal bytes surface writeback and logging that
        # happened inside the statement's window.
        disk = root.total_disk_reads()
        written = root.total_pages_written()
        wal = root.total_wal_bytes()
        if disk or written or wal:
            total += (
                f", disk reads={disk}, pages written={written}, "
                f"wal bytes={wal}"
            )
        lines.append(total)
    return "\n".join(lines)


def _render(
    op: PhysicalOp, depth: int, analyze: bool, lines: list[str]
) -> None:
    parts = [f"est rows≈{_fmt(op.est.rows)}", f"cost≈{op.est.cost:.2f}"]
    if op.est.pages:
        parts.append(f"est pages≈{_fmt(op.est.pages)}")
    if analyze:
        parts.append(f"actual rows={op.actual_rows}")
        parts.append(f"batch={op.batch_format}")
        if op.actual_pages is not None:
            parts.append(f"pages read={op.actual_pages}")
        if op.actual_disk_reads:
            parts.append(f"disk reads={op.actual_disk_reads}")
        if op.actual_index_lookups:
            parts.append(f"index lookups={op.actual_index_lookups}")
        if op.actual_bytes_decoded is not None:
            parts.append(f"bytes decoded={op.actual_bytes_decoded}")
    prefix = "  " * depth + ("-> " if depth else "")
    lines.append(f"{prefix}{op.describe()} ({', '.join(parts)})")
    for child in op.children():
        _render(child, depth + 1, analyze, lines)


def _fmt(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.1f}"


def plan_summary(root: PhysicalOp) -> str:
    """One-line shape of the plan — operator names with their batch
    format, nested like the tree — for the CLI's ``--stats`` footer:
    ``Filter[codes](HeapScan[codes])``."""
    name = type(root).__name__
    inner = ", ".join(plan_summary(c) for c in root.children())
    suffix = f"({inner})" if inner else ""
    return f"{name}[{root.batch_format}]{suffix}"
