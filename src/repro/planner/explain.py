"""Rendering of physical plans for ``EXPLAIN`` / ``EXPLAIN ANALYZE``.

``EXPLAIN`` shows the chosen physical operators with the cost model's
estimates; ``EXPLAIN ANALYZE`` additionally executes the plan and
appends what actually happened — rows produced, pages read and index
probes per operator, plus plan totals.  The result object renders
through :meth:`ExplainResult.to_table` so the CLI prints it exactly
like a relation.

The per-operator lines are rendered from :class:`OperatorSpan` trees
(:func:`repro.obs.trace.spans_from_plan`) — the same span data the
query tracer records — so ``EXPLAIN ANALYZE`` and a ``QueryTrace`` of
the same statement report from one set of books.  When per-operator
timing ran (tracing with ``operator_timing`` on), each line also shows
``time=``; the §4 operation totals line appears when the caller passes
the execution's :class:`~repro.util.counters.OperationDelta`.
"""

from __future__ import annotations

from repro.obs.trace import OperatorSpan, spans_from_plan
from repro.planner.physical import PhysicalOp
from repro.util.counters import OperationDelta


class ExplainResult:
    """The textual outcome of an EXPLAIN statement."""

    def __init__(self, text: str):
        self.text = text

    def to_table(self, title: str | None = None) -> str:
        del title
        return self.text

    def __str__(self) -> str:
        return self.text

    def __repr__(self) -> str:
        return f"ExplainResult({self.text.splitlines()[0]!r}...)"


def render_plan(
    root: PhysicalOp,
    analyze: bool = False,
    ops: OperationDelta | None = None,
) -> str:
    """Render an operator tree, one node per line, estimates (and
    actuals, after execution) in parentheses."""
    return render_spans(spans_from_plan(root), analyze=analyze, ops=ops)


def render_spans(
    root: OperatorSpan,
    analyze: bool = False,
    ops: OperationDelta | None = None,
) -> str:
    """Render a span tree — the shared backend of ``EXPLAIN`` and the
    tracer's plan view."""
    lines = ["QUERY PLAN"]
    _render(root, 0, analyze, lines)
    if analyze:
        total = (
            f"total: pages read={root.total('pages')}, "
            f"index lookups={root.total('index_lookups')}, "
            f"bytes decoded={root.total('bytes_decoded')}"
        )
        # Physical layer, shown only when a durable store was touched:
        # disk reads split buffer-pool misses out of the page touches;
        # pages written / wal bytes surface writeback and logging that
        # happened inside the statement's window.
        disk = root.total("disk_reads")
        written = root.total("pages_written")
        wal = root.total("wal_bytes")
        if disk or written or wal:
            total += (
                f", disk reads={disk}, pages written={written}, "
                f"wal bytes={wal}"
            )
        lines.append(total)
        if ops is not None and (
            ops.compositions or ops.decompositions or ops.tuple_probes
        ):
            lines.append(
                f"ops: compositions={ops.compositions}, "
                f"decompositions={ops.decompositions}, "
                f"tuple probes={ops.tuple_probes}"
            )
    return "\n".join(lines)


def _render(
    span: OperatorSpan, depth: int, analyze: bool, lines: list[str]
) -> None:
    parts = [f"est rows≈{_fmt(span.est_rows)}", f"cost≈{span.est_cost:.2f}"]
    if span.est_pages:
        parts.append(f"est pages≈{_fmt(span.est_pages)}")
    if analyze:
        parts.append(f"actual rows={span.rows}")
        parts.append(f"batch={span.batch_format}")
        if span.pages is not None:
            parts.append(f"pages read={span.pages}")
        if span.disk_reads:
            parts.append(f"disk reads={span.disk_reads}")
        if span.index_lookups:
            parts.append(f"index lookups={span.index_lookups}")
        if span.bytes_decoded is not None:
            parts.append(f"bytes decoded={span.bytes_decoded}")
        if span.time_s is not None:
            parts.append(f"time={span.time_s * 1000:.2f}ms")
    prefix = "  " * depth + ("-> " if depth else "")
    lines.append(f"{prefix}{span.describe} ({', '.join(parts)})")
    for child in span.children:
        _render(child, depth + 1, analyze, lines)


def _fmt(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.1f}"


def plan_summary(root: PhysicalOp) -> str:
    """One-line shape of the plan — operator names with their batch
    format, nested like the tree — for the CLI's ``--stats`` footer:
    ``Filter[codes](HeapScan[codes])``."""
    name = type(root).__name__
    inner = ", ".join(plan_summary(c) for c in root.children())
    suffix = f"({inner})" if inner else ""
    return f"{name}[{root.batch_format}]{suffix}"
