"""Physical operators for the NF2 planner: a columnar batch executor.

Operators execute batch-at-a-time.  The *native* stream is columnar:
:meth:`PhysicalOp.iter_col_batches` yields
:class:`~repro.storage.columnar.ColumnBatch` vectors of at most
:data:`BATCH_SIZE` rows whose atom columns are dictionary-encoded
(small int codes, not Python objects), so filters and joins run as
tight loops over codes.  The row-level protocol survives as an adapter:
:meth:`PhysicalOp.iter_batches` decodes each column batch back to
``list[NFRTuple]`` at the consumer boundary, and
:meth:`PhysicalOp.execute` is the thin materialising wrapper the
evaluator and ``EXPLAIN ANALYZE`` consume — its result is identical to
operator-at-a-time evaluation (NFRelations are sets, so duplicates
produced mid-stream collapse at materialisation).

Columnar operators (the scans, :class:`Filter`, :class:`ProjectOp`,
:class:`UnnestOp`, :class:`FlattenOp`, :class:`HashJoin`) pipeline
column batches; each reports ``batch_format == "codes"`` in ``EXPLAIN
ANALYZE``.  Row operators (:class:`NestOp`, :class:`CanonicalOp`,
:class:`FlatHashJoin`, the set operators) still consume rows at their
barrier and report ``batch_format == "rows"``; a row operator consumed
by a columnar one is re-encoded through a private dictionary.

Access paths:

- :class:`MemoryScan` — the catalog's in-memory relation (no page I/O);
- :class:`HeapScan` — full scan of the relation's paged store;
- :class:`IndexScan` — :class:`~repro.storage.index.AtomIndex` probes
  produce candidate records;
- :class:`RangeScan` — :class:`~repro.storage.index.RangeIndex` window
  probe for inequality/BETWEEN conjuncts, reading O(matching records)
  pages instead of the full heap.

Paged scans fill their vectors straight from record bytes through the
store's column-wise skip-decoder and apply the conjunct *kernels* (per
conjunct, per batch, over codes) as the residual recheck; all of them
accept a ``needed`` attribute set pushed down by the planner so only
those components are decoded.

Joins are hash-based: :class:`HashJoin` buckets the smaller input on
the shared component sets (set-equality is the Jaeschke-Schek join
condition — frozensets of codes are the hash keys, after translating
the right stream onto the left's dictionary);
:class:`FlatHashJoin` hashes the flattened R* rows on their shared
atomic values.
"""

from __future__ import annotations

from itertools import product
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

from repro.core.canonical import canonical_form
from repro.core.nest import nest_sequence
from repro.core.nfr_relation import NFRelation
from repro.core.nfr_tuple import NFRTuple
from repro.errors import EvaluationError
from repro.nf2_algebra.operators import ComponentPredicate
from repro.planner.cost import CostEstimate
from repro.query import ast
from repro.relational.algebra import difference, natural_join
from repro.relational.schema import RelationSchema
from repro.storage.columnar import AtomDict, ColumnBatch, concat_batches
from repro.storage.engine import NFRStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.planner.logical import RangeBounds
    from repro.query.params import ParamSlots
    from repro.util.counters import OperationCounter

#: Tuples per streamed batch.  Small enough that a pipeline's working
#: set stays a few hundred tuples regardless of input cardinality,
#: large enough to amortise per-batch overhead.
BATCH_SIZE = 256

Batch = list[NFRTuple]

_EMPTY: list[int] = []


def _identity(value: Any) -> Any:
    return value


# -- conjunct kernels ----------------------------------------------------------


def _conjunct_kernel(cond: ast.Condition, batch: ColumnBatch, resolve):
    """Compile one conjunct against one column batch: a function from
    candidate row indices to the surviving ones, comparing dictionary
    codes only.  ``resolve`` maps parameter placeholders to values."""
    j = batch.names.index(cond.attribute)
    offsets, codes = batch.columns[j]
    adict = batch.adict
    if isinstance(cond, ast.Contains):
        cs = adict.equal_codes(resolve(cond.value))
        if not cs:
            return lambda rows: _EMPTY
        if len(cs) == 1:
            (c,) = cs
            if offsets is None:
                return lambda rows: [i for i in rows if codes[i] == c]
            return lambda rows: [
                i
                for i in rows
                if c in codes[offsets[i] : offsets[i + 1]]
            ]
        cset = frozenset(cs)
        if offsets is None:
            return lambda rows: [i for i in rows if codes[i] in cset]
        return lambda rows: [
            i
            for i in rows
            if not cset.isdisjoint(codes[offsets[i] : offsets[i + 1]])
        ]
    if isinstance(cond, ast.SingletonEquals):
        cset = frozenset(adict.equal_codes(resolve(cond.value)))
        if not cset:
            return lambda rows: _EMPTY
        if offsets is None:
            return lambda rows: [i for i in rows if codes[i] in cset]
        return lambda rows: [
            i
            for i in rows
            if offsets[i + 1] - offsets[i] == 1
            and codes[offsets[i]] in cset
        ]
    if isinstance(cond, ast.ComponentEquals):
        # Set equality under Python ``==``: each target value owns a
        # (disjoint) set of equal codes, and a stored component — whose
        # atoms are pairwise non-equal — matches iff it has exactly one
        # code per distinct target value and no code outside them.
        target_sets: list[frozenset[int]] = []
        for v in cond.values:
            cs = frozenset(adict.equal_codes(resolve(v)))
            if not cs:
                return lambda rows: _EMPTY
            if cs not in target_sets:
                target_sets.append(cs)
        m = len(target_sets)
        union = frozenset().union(*target_sets)
        if offsets is None:
            if m != 1:
                return lambda rows: _EMPTY
            return lambda rows: [i for i in rows if codes[i] in union]
        return lambda rows: [
            i
            for i in rows
            if offsets[i + 1] - offsets[i] == m
            and all(c in union for c in codes[offsets[i] : offsets[i + 1]])
        ]
    if isinstance(cond, (ast.Comparison, ast.Between)):
        if isinstance(cond, ast.Between):
            mask = adict.range_mask(
                resolve(cond.low), True, resolve(cond.high), True
            )
        else:
            v = resolve(cond.value)
            op = cond.op
            mask = adict.range_mask(
                v if op in (">", ">=") else None,
                op == ">=",
                v if op in ("<", "<=") else None,
                op == "<=",
            )
        if offsets is None:
            return lambda rows: [i for i in rows if mask[codes[i]]]
        return lambda rows: [
            i
            for i in rows
            if any(mask[c] for c in codes[offsets[i] : offsets[i + 1]])
        ]
    raise EvaluationError(f"unknown condition {cond!r}")


def _filter_rows(
    conjuncts: Sequence[ast.Condition], batch: ColumnBatch, resolve
) -> list[int] | None:
    """Apply every conjunct kernel to the batch.  Returns the surviving
    row indices, or None meaning *all rows survive* (so callers can
    skip the copy)."""
    rows: list[int] | None = None
    for cond in conjuncts:
        kernel = _conjunct_kernel(cond, batch, resolve)
        rows = kernel(range(batch.n) if rows is None else rows)
        if not rows:
            return _EMPTY
    if rows is None or len(rows) == batch.n:
        return None
    return rows


class PhysicalOp:
    """Base class: estimated numbers at plan time, actuals after
    :meth:`execute` (or after a stream is exhausted)."""

    #: Native stream format, shown by ``EXPLAIN ANALYZE``: "codes" for
    #: operators that pipeline dictionary-encoded column batches,
    #: "rows" for tuple-at-a-time operators.
    batch_format = "rows"

    def __init__(self, est: CostEstimate):
        self.est = est
        self.actual_rows: int | None = None
        self.actual_pages: int | None = None
        self.actual_index_lookups: int | None = None
        self.actual_bytes_decoded: int | None = None
        #: Physical layer (durable stores only): page reads that missed
        #: the buffer pool, page images written back to the file during
        #: this operator's window, WAL bytes appended.
        self.actual_disk_reads: int | None = None
        self.actual_pages_written: int | None = None
        self.actual_wal_bytes: int | None = None
        #: Stream instrumentation: batches yielded and the largest batch
        #: ever held (the per-operator peak working set).
        self.batches_emitted = 0
        self.peak_batch_tuples = 0
        #: Wall time accumulated by the tracing wrapper (see
        #: :func:`repro.obs.trace.enable_timing`); ``timed`` marks the
        #: operator as wrapped so re-tracing a cached plan is a no-op.
        self.time_s = 0.0
        self.timed = False
        #: Plan-level §4 operation counter, shared by every operator of
        #: one plan tree (attached by the planner).  Operators charge
        #: compositions/decompositions/tuple probes into it as they
        #: stream; callers diff snapshots around an execution.
        self.ops: "OperationCounter | None" = None

    # -- execution protocol ----------------------------------------------------

    def execute(self) -> NFRelation:
        """Materialise the full result (thin wrapper over the stream)."""
        result = self._materialize()
        self.actual_rows = result.cardinality
        return result

    def iter_batches(self) -> Iterator[Batch]:
        """Stream the result as row batches of at most
        :data:`BATCH_SIZE` tuples.  Blocking operators materialise here
        (the barrier) and chunk; streaming operators override this to
        pipeline."""
        result = self._materialize()
        self.actual_rows = result.cardinality
        yield from self._chunk(result)

    def iter_col_batches(self) -> Iterator[ColumnBatch]:
        """Stream the result as dictionary-encoded column batches.
        Row-native operators adapt by encoding their row batches
        through a private dictionary; columnar operators override this
        with their native stream (and adapt :meth:`iter_batches`
        instead)."""
        adict = AtomDict()
        names = tuple(self.output_schema().names)
        for rows in self.iter_batches():
            yield ColumnBatch.from_rows(names, rows, adict)

    def _materialize(self) -> NFRelation:
        return self._run()

    def _run(self) -> NFRelation:  # pragma: no cover - abstract
        raise NotImplementedError

    def output_schema(self) -> RelationSchema:  # pragma: no cover - abstract
        raise NotImplementedError

    def _chunk(self, tuples: Iterable[NFRTuple]) -> Iterator[Batch]:
        batch: Batch = []
        for t in tuples:
            batch.append(t)
            if len(batch) >= BATCH_SIZE:
                yield self._note(batch)
                batch = []
        if batch:
            yield self._note(batch)

    def _note(self, batch: Batch) -> Batch:
        self._note_rows(len(batch))
        return batch

    def _note_rows(self, n: int) -> None:
        self.batches_emitted += 1
        if n > self.peak_batch_tuples:
            self.peak_batch_tuples = n

    # -- tree plumbing ---------------------------------------------------------

    def children(self) -> tuple["PhysicalOp", ...]:
        return ()

    def describe(self) -> str:  # pragma: no cover - abstract
        return type(self).__name__

    def total_pages_read(self) -> int:
        """Pages actually read by this subtree (0 before execution)."""
        own = self.actual_pages or 0
        return own + sum(c.total_pages_read() for c in self.children())

    def total_index_lookups(self) -> int:
        own = self.actual_index_lookups or 0
        return own + sum(c.total_index_lookups() for c in self.children())

    def total_bytes_decoded(self) -> int:
        own = self.actual_bytes_decoded or 0
        return own + sum(c.total_bytes_decoded() for c in self.children())

    def total_disk_reads(self) -> int:
        own = self.actual_disk_reads or 0
        return own + sum(c.total_disk_reads() for c in self.children())

    def total_pages_written(self) -> int:
        own = self.actual_pages_written or 0
        return own + sum(c.total_pages_written() for c in self.children())

    def total_wal_bytes(self) -> int:
        own = self.actual_wal_bytes or 0
        return own + sum(c.total_wal_bytes() for c in self.children())


class StreamingOp(PhysicalOp):
    """An operator that produces its result via a true batch stream;
    materialisation collects the stream."""

    def _materialize(self) -> NFRelation:
        out: list[NFRTuple] = []
        for batch in self.iter_batches():
            out.extend(batch)
        return NFRelation(self.output_schema(), out)

    def iter_batches(self) -> Iterator[Batch]:  # pragma: no cover - abstract
        raise NotImplementedError

    def _rebatch(
        self, pieces: Iterable[Sequence[NFRTuple]]
    ) -> Iterator[Batch]:
        """Flatten per-tuple expansions into batches of exactly
        :data:`BATCH_SIZE` (the last one may be short)."""
        batch: Batch = []
        for piece in pieces:
            batch.extend(piece)
            while len(batch) >= BATCH_SIZE:
                yield self._note(batch[:BATCH_SIZE])
                batch = batch[BATCH_SIZE:]
        if batch:
            yield self._note(batch)


class ColumnarOp(StreamingOp):
    """An operator whose native stream is columnar.  The row protocol
    decodes the column stream at the boundary; batch/peak accounting
    happens once, in the columnar stream."""

    batch_format = "codes"

    def iter_batches(self) -> Iterator[Batch]:
        schema = self.output_schema()
        for cb in self.iter_col_batches():
            rows = cb.to_rows(schema)
            if rows:
                yield rows

    def iter_col_batches(
        self,
    ) -> Iterator[ColumnBatch]:  # pragma: no cover - abstract
        raise NotImplementedError


# -- access paths --------------------------------------------------------------


class MemoryScan(StreamingOp):
    """Scan the catalog's in-memory NFR (no page I/O)."""

    def __init__(self, relation: NFRelation, name: str, est: CostEstimate):
        super().__init__(est)
        self.relation = relation
        self.name = name

    def output_schema(self) -> RelationSchema:
        return self.relation.schema

    def _materialize(self) -> NFRelation:
        # The relation is already materialised — no need to rebuild it
        # from our own batch stream.
        return self.relation

    def iter_batches(self) -> Iterator[Batch]:
        rows = 0
        for batch in self._chunk(self.relation):
            rows += len(batch)
            yield batch
        self.actual_rows = rows

    def describe(self) -> str:
        return f"MemoryScan {self.name}"


def _decode_note(needed: tuple[str, ...] | None) -> str:
    if not needed:
        return ""
    return f" decode({', '.join(needed)})"


class _StoreScan(ColumnarOp):
    """Shared machinery for the paged access paths: pull column batches
    from the store, apply the conjunct kernels inline, and account I/O.

    The store's counters are cumulative and shared, so the window is
    opened and closed around each batch *assembly* — the only span
    where this scan holds control.  I/O performed by another stream
    while this one is suspended at a ``yield`` therefore never lands in
    this scan's actuals, even when two streams over the same store are
    consumed interleaved."""

    def __init__(
        self,
        store: NFRStore,
        name: str,
        est: CostEstimate,
        predicate: ComponentPredicate | None,
        needed: tuple[str, ...] | None,
        conjuncts: Sequence[ast.Condition] = (),
        slots: "ParamSlots | None" = None,
    ):
        super().__init__(est)
        self.store = store
        self.name = name
        self.predicate = predicate
        self.needed = needed
        self.conjuncts = tuple(conjuncts)
        self.slots = slots
        self._schema = (
            store.schema.project(list(needed)) if needed else store.schema
        )

    def output_schema(self) -> RelationSchema:
        return self._schema

    def _col_stream(
        self,
    ) -> Iterator[ColumnBatch]:  # pragma: no cover - abstract
        raise NotImplementedError

    def _resolve(self, value: Any) -> Any:
        return self.slots.resolve(value) if self.slots is not None else value

    def iter_col_batches(self) -> Iterator[ColumnBatch]:
        store = self.store
        conjuncts = self.conjuncts
        resolve = self._resolve
        stream = self._col_stream()
        pages = visits = lookups = nbytes = rows = 0
        disk = written = wal = 0
        while True:
            before = store.stats_window()
            try:
                batch: ColumnBatch | None = next(stream)
            except StopIteration:
                batch = None
            after = store.stats_window()
            pages += after[0] - before[0]
            visits += after[1] - before[1]
            lookups += after[2] - before[2]
            nbytes += after[3] - before[3]
            disk += after[4] - before[4]
            written += after[5] - before[5]
            wal += after[6] - before[6]
            if batch is None:
                break
            if self.ops is not None:
                # Candidate tuples examined by this access path — the
                # paper's ``searcht`` probes, at batch granularity.
                self.ops.tuple_probes += batch.n
            if conjuncts:
                kept = _filter_rows(conjuncts, batch, resolve)
                if kept is not None:
                    if not kept:
                        continue
                    batch = batch.take(kept)
            rows += batch.n
            self._note_rows(batch.n)
            yield batch
        self.actual_rows = rows
        self.actual_pages = pages
        self.actual_index_lookups = lookups
        self.actual_bytes_decoded = nbytes
        self.actual_disk_reads = disk
        self.actual_pages_written = written
        self.actual_wal_bytes = wal


class HeapScan(_StoreScan):
    """Full scan of the paged store, optionally filtering in-line and
    skip-decoding only the ``needed`` attributes."""

    def __init__(
        self,
        store: NFRStore,
        name: str,
        est: CostEstimate,
        predicate: ComponentPredicate | None = None,
        needed: tuple[str, ...] | None = None,
        conjuncts: Sequence[ast.Condition] = (),
        slots: "ParamSlots | None" = None,
    ):
        super().__init__(
            store, name, est, predicate, needed, conjuncts, slots
        )

    def _col_stream(self) -> Iterator[ColumnBatch]:
        return self.store.stream_scan_columns(
            self.needed, batch_rows=BATCH_SIZE
        )

    def describe(self) -> str:
        note = _decode_note(self.needed)
        if self.predicate is not None:
            return (
                f"HeapScan {self.name} [{self.predicate.description}]{note}"
            )
        return f"HeapScan {self.name}{note}"


class IndexScan(_StoreScan):
    """AtomIndex candidate probes + residual predicate recheck.

    Probe atoms may be :class:`~repro.query.ast.Parameter` placeholders
    when the plan was built for a parameterized statement; they resolve
    through ``slots`` each time the scan starts, so a cached plan probes
    with the current binding's values."""

    def __init__(
        self,
        store: NFRStore,
        name: str,
        atoms: Sequence[tuple[str, Any]],
        predicate: ComponentPredicate,
        est: CostEstimate,
        needed: tuple[str, ...] | None = None,
        slots: "ParamSlots | None" = None,
        conjuncts: Sequence[ast.Condition] = (),
    ):
        super().__init__(
            store, name, est, predicate, needed, conjuncts, slots
        )
        self.atoms = list(atoms)

    def _col_stream(self) -> Iterator[ColumnBatch]:
        atoms = self.atoms
        if self.slots is not None:
            atoms = [(a, self.slots.resolve(v)) for a, v in atoms]
        return self.store.stream_probe_columns(
            atoms, self.needed, batch_rows=BATCH_SIZE
        )

    def describe(self) -> str:
        probes = ", ".join(f"{a}∋{v!r}" for a, v in self.atoms)
        return (
            f"IndexScan {self.name} via AtomIndex({probes}) "
            f"[{self.predicate.description}]{_decode_note(self.needed)}"
        )


class RangeScan(_StoreScan):
    """RangeIndex window probe + residual predicate recheck: candidate
    records have some indexed atom inside the window, so a selective
    inequality reads O(matching records) pages, not the full heap.
    Parameter bounds resolve through ``slots`` at stream start, like
    IndexScan probes."""

    def __init__(
        self,
        store: NFRStore,
        name: str,
        bounds: "RangeBounds",
        predicate: ComponentPredicate,
        est: CostEstimate,
        needed: tuple[str, ...] | None = None,
        slots: "ParamSlots | None" = None,
        conjuncts: Sequence[ast.Condition] = (),
    ):
        super().__init__(
            store, name, est, predicate, needed, conjuncts, slots
        )
        self.bounds = bounds

    def _col_stream(self) -> Iterator[ColumnBatch]:
        b = self.bounds
        return self.store.stream_range_columns(
            b.attribute,
            self._resolve(b.low),
            self._resolve(b.high),
            b.low_inclusive,
            b.high_inclusive,
            needed=self.needed,
            batch_rows=BATCH_SIZE,
        )

    def describe(self) -> str:
        b = self.bounds
        lo = "-inf" if b.low is None else repr(b.low)
        hi = "+inf" if b.high is None else repr(b.high)
        window = (
            ("[" if b.low_inclusive else "(")
            + f"{lo}, {hi}"
            + ("]" if b.high_inclusive else ")")
        )
        residual = (
            f" [{self.predicate.description}]"
            if self.predicate is not None
            else ""
        )
        return (
            f"RangeScan {self.name} via RangeIndex({b.attribute}) "
            f"range={window}{residual}{_decode_note(self.needed)}"
        )


class ParallelShardScan(HeapScan):
    """Fan-out scan of a hash-partitioned store: one worker per shard
    streams that shard's column batches with the conjunct kernels
    applied *worker-side*, so filtering happens in parallel and only
    surviving rows cross the pipe.  Batches arrive re-coded onto one
    coordinator dictionary (the shard-local remap travels with each
    batch), so downstream columnar operators see a single-dictionary
    stream exactly as they would from a plain :class:`HeapScan`.

    Workers come from the catalog's persistent
    :class:`~repro.storage.parallel.WorkerPool` (forked once per
    catalog generation, reused across queries) when the planner wired a
    catalog in; otherwise the scan forks a private worker per shard,
    as PR 8 did.  Pooled jobs travel as picklable specs, so parameter
    placeholders are resolved through ``slots`` *before* dispatch;
    one-shot workers inherit the bound slots in their fork snapshot.

    When forked execution is unavailable (single core, no ``fork``, or
    ``REPRO_PARALLEL=0``) the scan degrades to the facade's serial
    shard-chained stream — same rows, same accounting, no processes.
    """

    #: The owning catalog (wired by the planner) — the handle to the
    #: persistent worker pool.  None means fork-per-query.
    catalog = None

    def iter_col_batches(self) -> Iterator[ColumnBatch]:
        from repro.storage.parallel import parallel_available

        if not parallel_available():
            yield from super().iter_col_batches()
            return
        pool = None
        if self.catalog is not None:
            pool = self.catalog.parallel_pool(len(self.store.shards))
        if pool is not None:
            yield from self._consume(self._pooled_stream(pool))
        else:
            yield from self._consume(self._forked_stream())

    def _pooled_stream(self, pool):
        from repro.planner.shardjobs import resolve_conjuncts

        resolve = (
            self.slots.resolve if self.slots is not None else _identity
        )
        conjuncts = resolve_conjuncts(self.conjuncts, resolve)
        jobs = [
            (i, ("scan", self.name, i, self.needed, conjuncts))
            for i in range(len(self.store.shards))
        ]
        return pool.run(jobs, self.store.coordinator_dict())

    def _forked_stream(self):
        from repro.storage.parallel import parallel_stream

        conjuncts = self.conjuncts
        slots = self.slots
        needed = self.needed

        def make_job(shard):
            def job():
                resolve = (
                    slots.resolve if slots is not None else _identity
                )
                before = shard.stats_window()
                for batch in shard.stream_scan_columns(
                    needed, batch_rows=BATCH_SIZE
                ):
                    if conjuncts:
                        kept = _filter_rows(conjuncts, batch, resolve)
                        if kept is not None:
                            if not kept:
                                continue
                            batch = batch.take(kept)
                    yield batch
                after = shard.stats_window()
                yield (
                    "stats",
                    tuple(a - b for a, b in zip(after, before)),
                )

            return job

        jobs = [make_job(s) for s in self.store.shards]
        return parallel_stream(jobs, self.store.coordinator_dict())

    def _consume(self, stream) -> Iterator[ColumnBatch]:
        rows = 0
        totals = [0] * 7
        try:
            for _idx, item in stream:
                if isinstance(item, ColumnBatch):
                    rows += item.n
                    self._note_rows(item.n)
                    yield item
                else:
                    diff = item[1]
                    for i in range(7):
                        totals[i] += diff[i]
                    if self.ops is not None:
                        # Candidate records the worker examined — the §4
                        # ``searcht`` probes, reported once per shard
                        # since per-batch counts stay worker-side.
                        self.ops.tuple_probes += diff[1]
        finally:
            # Deterministic worker teardown even when the consumer
            # abandons this generator mid-merge (a closed cursor, a
            # LIMIT upstream): the stream's own finally terminates (or,
            # pooled, terminates-and-marks-for-respawn) every worker
            # still in flight, so no forked child outlives the query.
            stream.close()
        self.actual_rows = rows
        self.actual_pages = totals[0]
        self.actual_index_lookups = totals[2]
        self.actual_bytes_decoded = totals[3]
        self.actual_disk_reads = totals[4]
        self.actual_pages_written = totals[5]
        self.actual_wal_bytes = totals[6]

    def describe(self) -> str:
        n = len(self.store.shards)
        note = _decode_note(self.needed)
        residual = (
            f" [{self.predicate.description}]"
            if self.predicate is not None
            else ""
        )
        return f"ParallelShardScan {self.name} x{n}{residual}{note}"


class EmptyResult(PhysicalOp):
    """A statically contradictory predicate: produce nothing."""

    def __init__(self, names: tuple[str, ...]):
        super().__init__(CostEstimate(rows=0.0, cost=0.0))
        self.names = names

    def output_schema(self) -> RelationSchema:
        return RelationSchema(list(self.names))

    def _run(self) -> NFRelation:
        return NFRelation(self.output_schema())

    def describe(self) -> str:
        return "EmptyResult [contradictory predicate]"


# -- streaming columnar operators ----------------------------------------------


class Filter(ColumnarOp):
    """Residual filter over column batches: one compiled kernel per
    conjunct per batch, comparing codes.  When constructed without a
    conjunct list (direct use), it falls back to the row predicate and
    re-encodes."""

    def __init__(
        self,
        child: PhysicalOp,
        predicate: ComponentPredicate,
        est: CostEstimate,
        conjuncts: Sequence[ast.Condition] = (),
        slots: "ParamSlots | None" = None,
    ):
        super().__init__(est)
        self.child = child
        self.predicate = predicate
        self.conjuncts = tuple(conjuncts)
        self.slots = slots

    def output_schema(self) -> RelationSchema:
        return self.child.output_schema()

    def iter_col_batches(self) -> Iterator[ColumnBatch]:
        rows = 0
        ops = self.ops
        if not self.conjuncts:
            predicate = self.predicate
            adict = AtomDict()
            names = tuple(self.output_schema().names)
            for batch in self.child.iter_batches():
                if ops is not None:
                    ops.tuple_probes += len(batch)
                kept = [t for t in batch if predicate(t)]
                if kept:
                    rows += len(kept)
                    self._note_rows(len(kept))
                    yield ColumnBatch.from_rows(names, kept, adict)
            self.actual_rows = rows
            return
        conjuncts = self.conjuncts
        resolve = (
            self.slots.resolve if self.slots is not None else _identity
        )
        for batch in self.child.iter_col_batches():
            if ops is not None:
                ops.tuple_probes += batch.n
            kept = _filter_rows(conjuncts, batch, resolve)
            if kept is not None:
                if not kept:
                    continue
                batch = batch.take(kept)
            rows += batch.n
            self._note_rows(batch.n)
            yield batch
        self.actual_rows = rows

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return f"Filter [{self.predicate.description}]"


class ProjectOp(ColumnarOp):
    def __init__(
        self,
        child: PhysicalOp,
        attributes: tuple[str, ...],
        est: CostEstimate,
    ):
        super().__init__(est)
        self.child = child
        self.attributes = attributes

    def output_schema(self) -> RelationSchema:
        return self.child.output_schema().project(list(self.attributes))

    def iter_col_batches(self) -> Iterator[ColumnBatch]:
        names = self.output_schema().names
        rows = 0
        for batch in self.child.iter_col_batches():
            projected = batch.project(names)
            # Dedupe within the batch (cross-batch duplicates collapse
            # at the next barrier or at materialisation — set
            # semantics).  Keys are per-row code tuples, no objects.
            keys = projected.component_keys(names)
            seen: set = set()
            keep: list[int] = []
            for i, key in enumerate(keys):
                if key not in seen:
                    seen.add(key)
                    keep.append(i)
            if not keep:
                continue
            out = (
                projected
                if len(keep) == projected.n
                else projected.take(keep)
            )
            rows += out.n
            self._note_rows(out.n)
            yield out
        self.actual_rows = rows

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return f"Project [{', '.join(self.attributes)}]"


class UnnestOp(ColumnarOp):
    """Unnest one attribute: expand each row's component run into one
    row per atom — pure offset/code arithmetic, no tuple objects."""

    def __init__(
        self, child: PhysicalOp, attribute: str, est: CostEstimate
    ):
        super().__init__(est)
        self.child = child
        self.attribute = attribute

    def output_schema(self) -> RelationSchema:
        return self.child.output_schema()

    def iter_col_batches(self) -> Iterator[ColumnBatch]:
        attribute = self.attribute
        self.output_schema().require([attribute])
        rows = 0
        for batch in self.child.iter_col_batches():
            j = batch.names.index(attribute)
            offsets, codes = batch.columns[j]
            if offsets is None:
                rows += batch.n
                self._note_rows(batch.n)
                yield batch
                continue
            src: list[int] = []
            flat: list[int] = []
            for i in range(batch.n):
                for p in range(offsets[i], offsets[i + 1]):
                    src.append(i)
                    flat.append(codes[p])
            if self.ops is not None:
                # Def. 2: each extra row splits one atom out of its
                # source component.
                self.ops.decompositions += len(src) - batch.n
            for start in range(0, len(src), BATCH_SIZE):
                end = start + BATCH_SIZE
                out = batch.take(src[start:end]).with_column(
                    j, (None, flat[start:end])
                )
                rows += out.n
                self._note_rows(out.n)
                yield out
        self.actual_rows = rows

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return f"Unnest [{self.attribute}]"


class FlattenOp(ColumnarOp):
    """Unnest every attribute — per-row Cartesian product of the
    component runs, emitted as all-singleton column batches."""

    def __init__(self, child: PhysicalOp, est: CostEstimate):
        super().__init__(est)
        self.child = child

    def output_schema(self) -> RelationSchema:
        return self.child.output_schema()

    def iter_col_batches(self) -> Iterator[ColumnBatch]:
        rows = 0
        for batch in self.child.iter_col_batches():
            if all(off is None for off, _ in batch.columns):
                rows += batch.n
                self._note_rows(batch.n)
                yield batch
                continue
            k = len(batch.names)
            out_codes: list[list[int]] = [[] for _ in range(k)]
            count = 0
            produced = 0
            for i in range(batch.n):
                per_attr = []
                for offsets, codes in batch.columns:
                    if offsets is None:
                        per_attr.append((codes[i],))
                    else:
                        per_attr.append(
                            tuple(codes[offsets[i] : offsets[i + 1]])
                        )
                for combo in product(*per_attr):
                    for j in range(k):
                        out_codes[j].append(combo[j])
                    count += 1
                    produced += 1
                    if count >= BATCH_SIZE:
                        rows += count
                        self._note_rows(count)
                        yield ColumnBatch(
                            batch.names,
                            count,
                            [(None, col) for col in out_codes],
                            batch.adict,
                        )
                        out_codes = [[] for _ in range(k)]
                        count = 0
            if count:
                rows += count
                self._note_rows(count)
                yield ColumnBatch(
                    batch.names,
                    count,
                    [(None, col) for col in out_codes],
                    batch.adict,
                )
            if self.ops is not None:
                # Each product row beyond the source rows is one Def. 2
                # split of a component value into its own tuple.
                self.ops.decompositions += max(produced - batch.n, 0)
        self.actual_rows = rows

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return "Flatten"


# -- blocking tuple operators --------------------------------------------------


class NestOp(PhysicalOp):
    """Grouping barrier: consumes the child's batches, then nests."""

    def __init__(
        self,
        child: PhysicalOp,
        attributes: tuple[str, ...],
        est: CostEstimate,
    ):
        super().__init__(est)
        self.child = child
        self.attributes = attributes

    def output_schema(self) -> RelationSchema:
        return self.child.output_schema()

    def _run(self) -> NFRelation:
        src = self.child.execute()
        src.schema.require(self.attributes)
        return nest_sequence(src, list(self.attributes), counter=self.ops)

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return f"Nest [{', '.join(self.attributes)}]"


class CanonicalOp(PhysicalOp):
    def __init__(
        self,
        child: PhysicalOp,
        order: tuple[str, ...],
        est: CostEstimate,
    ):
        super().__init__(est)
        self.child = child
        self.order = order

    def output_schema(self) -> RelationSchema:
        return self.child.output_schema()

    def _run(self) -> NFRelation:
        return canonical_form(
            self.child.execute().to_1nf(),
            list(self.order),
            counter=self.ops,
        )

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return f"Canonical [{', '.join(self.order)}]"


# -- joins and set operators ---------------------------------------------------


def nf2_hash_join(left: NFRelation, right: NFRelation) -> NFRelation:
    """Jaeschke-Schek NF2 natural join, hashing the *smaller* input on
    its shared component sets and probing with the larger.  (The
    materialised reference implementation; :class:`HashJoin` runs the
    same algorithm over dictionary codes.)"""
    shared = left.schema.common_names(right.schema)
    right_only = [n for n in right.schema.names if n not in shared]
    schema = (
        left.schema.concat(right.schema.project(right_only))
        if right_only
        else left.schema
    )

    def emit(lt: NFRTuple, rt: NFRTuple) -> NFRTuple:
        return NFRTuple(
            schema, list(lt.components) + [rt[n] for n in right_only]
        )

    if not shared:
        return NFRelation(
            schema, (emit(lt, rt) for lt in left for rt in right)
        )

    if left.cardinality <= right.cardinality:
        build, probe, probe_is_left = left, right, False
    else:
        build, probe, probe_is_left = right, left, True
    buckets: dict[tuple, list[NFRTuple]] = {}
    for bt in build:
        buckets.setdefault(tuple(bt[n] for n in shared), []).append(bt)
    out: list[NFRTuple] = []
    for pt in probe:
        key = tuple(pt[n] for n in shared)
        for bt in buckets.get(key, ()):
            out.append(emit(pt, bt) if probe_is_left else emit(bt, pt))
    return NFRelation(schema, out)


def hash_join_batches(
    lhs: ColumnBatch, rhs: ColumnBatch
) -> tuple[ColumnBatch | None, int]:
    """NF2 natural join of two single-dictionary batches (``rhs`` must
    already be coded under ``lhs.adict``): bucket the smaller side on
    its shared component sets, probe with the larger, and return the
    combined batch (left columns first, then right-only columns) plus
    the number of emitted pairs — each pair is one Def. 1 composition.
    Returns ``(None, 0)`` when nothing joins.  Shared by the
    coordinator :class:`HashJoin` barrier and the shard-local join
    workers (:mod:`repro.planner.shardjobs`)."""
    shared = [n for n in lhs.names if n in rhs.names]
    right_only = [n for n in rhs.names if n not in lhs.names]
    if not shared:
        pairs = [(i, j) for i in range(lhs.n) for j in range(rhs.n)]
    elif lhs.n <= rhs.n:
        buckets: dict = {}
        for i, key in enumerate(lhs.component_keys(shared)):
            buckets.setdefault(key, []).append(i)
        pairs = [
            (i, j)
            for j, key in enumerate(rhs.component_keys(shared))
            for i in buckets.get(key, _EMPTY)
        ]
    else:
        buckets = {}
        for j, key in enumerate(rhs.component_keys(shared)):
            buckets.setdefault(key, []).append(j)
        pairs = [
            (i, j)
            for i, key in enumerate(lhs.component_keys(shared))
            for j in buckets.get(key, _EMPTY)
        ]
    if not pairs:
        return None, 0
    out_names = lhs.names + tuple(right_only)
    lout = lhs.take([p[0] for p in pairs])
    columns = list(lout.columns)
    if right_only:
        rout = rhs.take([p[1] for p in pairs]).project(right_only)
        columns.extend(rout.columns)
    return ColumnBatch(out_names, len(pairs), columns, lhs.adict), len(pairs)


class HashJoin(ColumnarOp):
    """NF2 natural join (shared components set-equal), hash-based, run
    over dictionary codes at the barrier: both children's column
    streams are collected, the right stream is translated onto the
    left's dictionary, and components hash by their frozenset of
    codes."""

    def __init__(
        self, left: PhysicalOp, right: PhysicalOp, est: CostEstimate
    ):
        super().__init__(est)
        self.left = left
        self.right = right

    def output_schema(self) -> RelationSchema:
        ls = self.left.output_schema()
        rs = self.right.output_schema()
        right_only = [n for n in rs.names if n not in ls.names]
        return ls.concat(rs.project(right_only)) if right_only else ls

    def children(self):
        return (self.left, self.right)

    def iter_col_batches(self) -> Iterator[ColumnBatch]:
        left_batches = list(self.left.iter_col_batches())
        right_batches = list(self.right.iter_col_batches())
        rows = 0
        if left_batches and right_batches:
            lhs = concat_batches(left_batches)
            rhs = concat_batches(right_batches).translated(lhs.adict)
            combined, npairs = hash_join_batches(lhs, rhs)
            if self.ops is not None:
                # Def. 1: each emitted pair merges a left and a right
                # tuple into one.
                self.ops.compositions += npairs
                self.ops.tuple_probes += lhs.n + rhs.n
            if combined is not None:
                if combined.n <= BATCH_SIZE:
                    rows += combined.n
                    self._note_rows(combined.n)
                    yield combined
                else:
                    for start in range(0, combined.n, BATCH_SIZE):
                        stop = min(start + BATCH_SIZE, combined.n)
                        out = combined.take(range(start, stop))
                        rows += out.n
                        self._note_rows(out.n)
                        yield out
        self.actual_rows = rows

    def describe(self) -> str:
        return "HashJoin [nf2-natural, set-equal components]"


class _JoinOp(PhysicalOp):
    """Shared schema derivation for row-level joins."""

    def __init__(
        self, left: PhysicalOp, right: PhysicalOp, est: CostEstimate
    ):
        super().__init__(est)
        self.left = left
        self.right = right

    def output_schema(self) -> RelationSchema:
        ls = self.left.output_schema()
        rs = self.right.output_schema()
        right_only = [n for n in rs.names if n not in ls.names]
        return ls.concat(rs.project(right_only)) if right_only else ls

    def children(self):
        return (self.left, self.right)


class FlatHashJoin(_JoinOp):
    """Natural join of the underlying R*s (hash join on shared atomic
    keys), returned in all-singleton form."""

    def _run(self) -> NFRelation:
        lhs = self.left.execute().to_1nf()
        rhs = self.right.execute().to_1nf()
        joined = natural_join(lhs, rhs)
        if self.ops is not None:
            # Each surviving flat pair is one Def. 1 composition; both
            # inputs' flats were probed against the hash table.
            self.ops.compositions += len(joined)
            self.ops.tuple_probes += len(lhs) + len(rhs)
        return NFRelation.from_1nf(joined)

    def describe(self) -> str:
        return "FlatHashJoin [1nf-natural, atomic keys]"


class _ShardJoinPlumbing:
    """Shared dispatch plumbing of the shard-local join operators.

    The planner proves co-location before emitting one of these: either
    both inputs are hash-partitioned on a shared join attribute with
    the same shard count (set-equal shared components are then
    necessarily co-resident, so no matching pair crosses shards), or
    one input is partitioned and the other — priced small by ANALYZE
    stats — is *broadcast* whole into every worker (joins are pairwise,
    so they distribute over the sharded side's tuple-level union
    regardless of its partition attribute).  Each worker runs the full
    join for its shard; only joined results cross the pipe.
    """

    #: "both" (co-partitioned), "left" or "right": which child is the
    #: partitioned side.  The other child, if any, is broadcast.
    shard_side = "both"
    kind = "nf2"

    def __init__(
        self,
        left: PhysicalOp,
        right: PhysicalOp,
        est: CostEstimate,
        shard_side: str = "both",
        catalog=None,
    ):
        super().__init__(est)
        self.left = left
        self.right = right
        self.shard_side = shard_side
        self.catalog = catalog

    def children(self):
        return (self.left, self.right)

    def output_schema(self) -> RelationSchema:
        ls = self.left.output_schema()
        rs = self.right.output_schema()
        right_only = [n for n in rs.names if n not in ls.names]
        return ls.concat(rs.project(right_only)) if right_only else ls

    def _sharded_children(self) -> list["ParallelShardScan"]:
        if self.shard_side == "both":
            return [self.left, self.right]
        return [self.left if self.shard_side == "left" else self.right]

    def _parallel_ready(self) -> bool:
        from repro.storage.parallel import parallel_available

        return self.catalog is not None and parallel_available()

    def _scan_desc(self, scan: "ParallelShardScan"):
        from repro.planner.shardjobs import resolve_conjuncts

        resolve = (
            scan.slots.resolve if scan.slots is not None else _identity
        )
        return (
            "scan",
            scan.name,
            resolve_conjuncts(scan.conjuncts, resolve),
            scan.needed,
        )

    def _broadcast_desc(self, op: PhysicalOp):
        """Materialise the small side and serialise it as plain atom
        rows (one tuple of atoms per component) — re-encoded inside
        each worker under its shard dictionary."""
        rel = op.execute()
        rows = [
            tuple(tuple(vs) for vs in t.components) for t in rel.tuples
        ]
        return ("rows", tuple(rel.schema.names), rows)

    def _dispatch(self):
        """One join spec per shard, streamed through the pool.  The
        descs are built *before* the pool is fetched: materialising a
        broadcast side may itself run a fan-out scan, and if that side
        is sharded differently the catalog swaps the pool under us —
        fetching afterwards always dispatches on the live pool."""
        if self.shard_side == "both":
            left_desc = self._scan_desc(self.left)
            right_desc = self._scan_desc(self.right)
            coord = self.left.store.coordinator_dict()
        elif self.shard_side == "left":
            left_desc = self._scan_desc(self.left)
            right_desc = self._broadcast_desc(self.right)
            coord = self.left.store.coordinator_dict()
        else:
            left_desc = self._broadcast_desc(self.left)
            right_desc = self._scan_desc(self.right)
            coord = self.right.store.coordinator_dict()
        nshards = len(self._sharded_children()[0].store.shards)
        jobs = [
            (i, ("join", self.kind, i, left_desc, right_desc))
            for i in range(nshards)
        ]
        pool = self.catalog.parallel_pool(nshards)
        return pool.run(jobs, coord)

    def _note_stats(self, item) -> None:
        _, diffs, probes, comps = item
        for i in range(7):
            self._totals[i] += diffs[i]
        if self.ops is not None:
            self.ops.compositions += comps
            self.ops.tuple_probes += probes

    def _begin_stats(self) -> None:
        self._totals = [0] * 7

    def _flush_stats(self) -> None:
        totals = self._totals
        self.actual_pages = totals[0]
        self.actual_index_lookups = totals[2]
        self.actual_bytes_decoded = totals[3]
        self.actual_disk_reads = totals[4]
        self.actual_pages_written = totals[5]
        self.actual_wal_bytes = totals[6]


class ParallelShardJoin(_ShardJoinPlumbing, ColumnarOp):
    """Shard-local NF2 hash join: the Jaeschke-Schek set-equality join
    runs inside each shard worker over that shard's dictionary codes;
    only joined column batches cross the pipe, re-coded onto the
    partitioned side's coordinator dictionary.  Falls back to the
    coordinator :class:`HashJoin` barrier when forked execution is
    unavailable."""

    kind = "nf2"

    def iter_col_batches(self) -> Iterator[ColumnBatch]:
        if not self._parallel_ready():
            fallback = HashJoin(self.left, self.right, self.est)
            fallback.ops = self.ops
            yield from fallback.iter_col_batches()
            self.actual_rows = fallback.actual_rows
            return
        rows = 0
        self._begin_stats()
        stream = self._dispatch()
        try:
            for _idx, item in stream:
                if isinstance(item, ColumnBatch):
                    rows += item.n
                    self._note_rows(item.n)
                    yield item
                else:
                    self._note_stats(item)
        finally:
            stream.close()
        self.actual_rows = rows
        self._flush_stats()

    def describe(self) -> str:
        n = len(self._sharded_children()[0].store.shards)
        mode = (
            "co-partitioned"
            if self.shard_side == "both"
            else f"broadcast-{'right' if self.shard_side == 'left' else 'left'}"
        )
        return f"ParallelShardJoin x{n} [{mode}, nf2-natural]"


class ParallelShardFlatJoin(_ShardJoinPlumbing, PhysicalOp):
    """Shard-local flat join: each worker natural-joins its shard's
    R* flats (against the co-partitioned peer shard or the broadcast
    side) and ships raw joined flats; the coordinator unions them and
    nests once — exactly :class:`FlatHashJoin`'s result, because the
    natural join distributes over the co-located tuple-level union."""

    kind = "flat"

    def _run(self) -> NFRelation:
        if not self._parallel_ready():
            fallback = FlatHashJoin(self.left, self.right, self.est)
            fallback.ops = self.ops
            return fallback._run()
        names: tuple[str, ...] | None = None
        flats: list[tuple] = []
        self._begin_stats()
        stream = self._dispatch()
        try:
            for _idx, item in stream:
                if item[0] == "flat":
                    names = item[1]
                    flats.extend(item[2])
                else:
                    self._note_stats(item)
        finally:
            stream.close()
        self._flush_stats()
        if names is None or not flats:
            return NFRelation(self.output_schema())
        from repro.relational.relation import Relation

        return NFRelation.from_1nf(Relation.from_rows(list(names), flats))

    def describe(self) -> str:
        n = len(self._sharded_children()[0].store.shards)
        mode = (
            "co-partitioned"
            if self.shard_side == "both"
            else f"broadcast-{'right' if self.shard_side == 'left' else 'left'}"
        )
        return f"ParallelShardFlatJoin x{n} [{mode}, 1nf-natural]"


class UnionOp(PhysicalOp):
    def __init__(
        self, left: PhysicalOp, right: PhysicalOp, est: CostEstimate
    ):
        super().__init__(est)
        self.left = left
        self.right = right

    def output_schema(self) -> RelationSchema:
        return self.left.output_schema()

    def _run(self) -> NFRelation:
        lhs = self.left.execute()
        rhs = _aligned(lhs, self.right.execute(), "UNION")
        return NFRelation(lhs.schema, lhs.tuples | rhs.tuples)

    def children(self):
        return (self.left, self.right)

    def describe(self) -> str:
        return "Union"


class DifferenceOp(PhysicalOp):
    def __init__(
        self, left: PhysicalOp, right: PhysicalOp, est: CostEstimate
    ):
        super().__init__(est)
        self.left = left
        self.right = right

    def output_schema(self) -> RelationSchema:
        return self.left.output_schema()

    def _run(self) -> NFRelation:
        lhs = self.left.execute()
        rhs = _aligned(lhs, self.right.execute(), "DIFFERENCE")
        return NFRelation.from_1nf(
            difference(lhs.to_1nf(), rhs.to_1nf())
        )

    def children(self):
        return (self.left, self.right)

    def describe(self) -> str:
        return "Difference [R*-level]"


def _aligned(
    left: NFRelation, right: NFRelation, opname: str
) -> NFRelation:
    """Reorder ``right`` onto ``left``'s schema, sharing the naive
    evaluator's alignment (imported lazily: the evaluator module only
    imports the planner inside functions, so this cannot cycle)."""
    from repro.query.evaluator import _align_right

    return _align_right(left, right, opname)
