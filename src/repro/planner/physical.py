"""Physical operators for the NF2 planner: a streaming batch executor.

Operators execute batch-at-a-time through :meth:`PhysicalOp.iter_batches`
— lists of at most :data:`BATCH_SIZE` tuples — so a
select→unnest→project pipeline holds one batch per operator instead of
materialising a full :class:`~repro.core.nfr_relation.NFRelation` at
every step.  :meth:`PhysicalOp.execute` is the thin materialising
wrapper the evaluator and ``EXPLAIN ANALYZE`` consume; its result is
identical to operator-at-a-time evaluation (NFRelations are sets, so
duplicates produced mid-stream collapse at materialisation).

Streaming operators (:class:`MemoryScan`, :class:`HeapScan`,
:class:`IndexScan`, :class:`Filter`, :class:`ProjectOp`,
:class:`UnnestOp`, :class:`FlattenOp`) pipeline their input batches.
Blocking operators (:class:`NestOp`, :class:`CanonicalOp`, the joins
and set operators) consume their children's batches at the barrier —
the child still streams, the barrier materialises.

Each operator records what actually happened (rows produced, pages
read, index probes, record bytes decoded) next to the planner's
estimates, so ``EXPLAIN ANALYZE`` can show estimated vs actual side by
side.

Access paths:

- :class:`MemoryScan` — the catalog's in-memory relation (no page I/O);
- :class:`HeapScan` — full scan of the relation's paged store, with an
  optional residual filter applied while scanning;
- :class:`IndexScan` — :class:`~repro.storage.index.AtomIndex` probes
  produce candidate records, which are re-checked against the full
  predicate (equality conditions need the residual check; CONTAINS
  probes are exact).

Both scans accept a ``needed`` attribute set pushed down by the
planner: the store's skip-decoder then materialises only those
components (``bytes_decoded`` in
:class:`~repro.storage.engine.ScanStats` measures the saving) and the
scan's output tuples live on the projected sub-schema.

Joins are hash-based: :class:`HashJoin` buckets the smaller input on
the shared component sets (set-equality is the Jaeschke-Schek join
condition, so whole :class:`~repro.core.values.ValueSet` components are
the hash keys); :class:`FlatHashJoin` hashes the flattened R* rows on
their shared atomic values.  Both replace nested-loop evaluation with
one build pass and one probe pass.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

from repro.core.canonical import canonical_form
from repro.core.nest import nest_sequence
from repro.core.nfr_relation import NFRelation
from repro.core.nfr_tuple import NFRTuple
from repro.core.values import ValueSet
from repro.nf2_algebra.operators import ComponentPredicate
from repro.planner.cost import CostEstimate
from repro.relational.algebra import difference, natural_join
from repro.relational.schema import RelationSchema
from repro.storage.engine import NFRStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.query.params import ParamSlots

#: Tuples per streamed batch.  Small enough that a pipeline's working
#: set stays a few hundred tuples regardless of input cardinality,
#: large enough to amortise per-batch overhead.
BATCH_SIZE = 256

Batch = list[NFRTuple]


class PhysicalOp:
    """Base class: estimated numbers at plan time, actuals after
    :meth:`execute` (or after a stream is exhausted)."""

    def __init__(self, est: CostEstimate):
        self.est = est
        self.actual_rows: int | None = None
        self.actual_pages: int | None = None
        self.actual_index_lookups: int | None = None
        self.actual_bytes_decoded: int | None = None
        #: Physical layer (durable stores only): page reads that missed
        #: the buffer pool, page images written back to the file during
        #: this operator's window, WAL bytes appended.
        self.actual_disk_reads: int | None = None
        self.actual_pages_written: int | None = None
        self.actual_wal_bytes: int | None = None
        #: Stream instrumentation: batches yielded and the largest batch
        #: ever held (the per-operator peak working set).
        self.batches_emitted = 0
        self.peak_batch_tuples = 0

    # -- execution protocol ----------------------------------------------------

    def execute(self) -> NFRelation:
        """Materialise the full result (thin wrapper over the stream)."""
        result = self._materialize()
        self.actual_rows = result.cardinality
        return result

    def iter_batches(self) -> Iterator[Batch]:
        """Stream the result as batches of at most :data:`BATCH_SIZE`
        tuples.  Blocking operators materialise here (the barrier) and
        chunk; streaming operators override this to pipeline."""
        result = self._materialize()
        self.actual_rows = result.cardinality
        yield from self._chunk(result)

    def _materialize(self) -> NFRelation:
        return self._run()

    def _run(self) -> NFRelation:  # pragma: no cover - abstract
        raise NotImplementedError

    def output_schema(self) -> RelationSchema:  # pragma: no cover - abstract
        raise NotImplementedError

    def _chunk(self, tuples: Iterable[NFRTuple]) -> Iterator[Batch]:
        batch: Batch = []
        for t in tuples:
            batch.append(t)
            if len(batch) >= BATCH_SIZE:
                yield self._note(batch)
                batch = []
        if batch:
            yield self._note(batch)

    def _note(self, batch: Batch) -> Batch:
        self.batches_emitted += 1
        if len(batch) > self.peak_batch_tuples:
            self.peak_batch_tuples = len(batch)
        return batch

    # -- tree plumbing ---------------------------------------------------------

    def children(self) -> tuple["PhysicalOp", ...]:
        return ()

    def describe(self) -> str:  # pragma: no cover - abstract
        return type(self).__name__

    def total_pages_read(self) -> int:
        """Pages actually read by this subtree (0 before execution)."""
        own = self.actual_pages or 0
        return own + sum(c.total_pages_read() for c in self.children())

    def total_index_lookups(self) -> int:
        own = self.actual_index_lookups or 0
        return own + sum(c.total_index_lookups() for c in self.children())

    def total_bytes_decoded(self) -> int:
        own = self.actual_bytes_decoded or 0
        return own + sum(c.total_bytes_decoded() for c in self.children())

    def total_disk_reads(self) -> int:
        own = self.actual_disk_reads or 0
        return own + sum(c.total_disk_reads() for c in self.children())

    def total_pages_written(self) -> int:
        own = self.actual_pages_written or 0
        return own + sum(c.total_pages_written() for c in self.children())

    def total_wal_bytes(self) -> int:
        own = self.actual_wal_bytes or 0
        return own + sum(c.total_wal_bytes() for c in self.children())


class StreamingOp(PhysicalOp):
    """An operator that produces its result via a true batch stream;
    materialisation collects the stream."""

    def _materialize(self) -> NFRelation:
        out: list[NFRTuple] = []
        for batch in self.iter_batches():
            out.extend(batch)
        return NFRelation(self.output_schema(), out)

    def iter_batches(self) -> Iterator[Batch]:  # pragma: no cover - abstract
        raise NotImplementedError

    def _rebatch(
        self, pieces: Iterable[Sequence[NFRTuple]]
    ) -> Iterator[Batch]:
        """Flatten per-tuple expansions into batches of exactly
        :data:`BATCH_SIZE` (the last one may be short)."""
        batch: Batch = []
        for piece in pieces:
            batch.extend(piece)
            while len(batch) >= BATCH_SIZE:
                yield self._note(batch[:BATCH_SIZE])
                batch = batch[BATCH_SIZE:]
        if batch:
            yield self._note(batch)


# -- access paths --------------------------------------------------------------


class MemoryScan(StreamingOp):
    """Scan the catalog's in-memory NFR (no page I/O)."""

    def __init__(self, relation: NFRelation, name: str, est: CostEstimate):
        super().__init__(est)
        self.relation = relation
        self.name = name

    def output_schema(self) -> RelationSchema:
        return self.relation.schema

    def _materialize(self) -> NFRelation:
        # The relation is already materialised — no need to rebuild it
        # from our own batch stream.
        return self.relation

    def iter_batches(self) -> Iterator[Batch]:
        rows = 0
        for batch in self._chunk(self.relation):
            rows += len(batch)
            yield batch
        self.actual_rows = rows

    def describe(self) -> str:
        return f"MemoryScan {self.name}"


def _decode_note(needed: tuple[str, ...] | None) -> str:
    if not needed:
        return ""
    return f" decode({', '.join(needed)})"


class _StoreScan(StreamingOp):
    """Shared machinery for the two paged access paths: stream the
    store, filter inline, batch, and account I/O.

    The store's counters are cumulative and shared, so the window is
    opened and closed around each batch *assembly* — the only span
    where this scan holds control.  I/O performed by another stream
    while this one is suspended at a ``yield`` therefore never lands in
    this scan's actuals, even when two streams over the same store are
    consumed interleaved."""

    def __init__(
        self,
        store: NFRStore,
        name: str,
        est: CostEstimate,
        predicate: ComponentPredicate | None,
        needed: tuple[str, ...] | None,
    ):
        super().__init__(est)
        self.store = store
        self.name = name
        self.predicate = predicate
        self.needed = needed
        self._schema = (
            store.schema.project(list(needed)) if needed else store.schema
        )

    def output_schema(self) -> RelationSchema:
        return self._schema

    def _stream(self) -> Iterator[NFRTuple]:  # pragma: no cover - abstract
        raise NotImplementedError

    def iter_batches(self) -> Iterator[Batch]:
        store = self.store
        predicate = self.predicate
        stream = self._stream()
        pages = visits = lookups = nbytes = rows = 0
        disk = written = wal = 0
        exhausted = False
        while not exhausted:
            before = store.stats_window()
            batch: Batch = []
            while len(batch) < BATCH_SIZE:
                try:
                    t = next(stream)
                except StopIteration:
                    exhausted = True
                    break
                if predicate is None or predicate(t):
                    batch.append(t)
            after = store.stats_window()
            pages += after[0] - before[0]
            visits += after[1] - before[1]
            lookups += after[2] - before[2]
            nbytes += after[3] - before[3]
            disk += after[4] - before[4]
            written += after[5] - before[5]
            wal += after[6] - before[6]
            if batch:
                rows += len(batch)
                yield self._note(batch)
        self.actual_rows = rows
        self.actual_pages = pages
        self.actual_index_lookups = lookups
        self.actual_bytes_decoded = nbytes
        self.actual_disk_reads = disk
        self.actual_pages_written = written
        self.actual_wal_bytes = wal


class HeapScan(_StoreScan):
    """Full scan of the paged store, optionally filtering in-line and
    skip-decoding only the ``needed`` attributes."""

    def __init__(
        self,
        store: NFRStore,
        name: str,
        est: CostEstimate,
        predicate: ComponentPredicate | None = None,
        needed: tuple[str, ...] | None = None,
    ):
        super().__init__(store, name, est, predicate, needed)

    def _stream(self) -> Iterator[NFRTuple]:
        return self.store.stream_scan(self.needed)

    def describe(self) -> str:
        note = _decode_note(self.needed)
        if self.predicate is not None:
            return (
                f"HeapScan {self.name} [{self.predicate.description}]{note}"
            )
        return f"HeapScan {self.name}{note}"


class IndexScan(_StoreScan):
    """AtomIndex candidate probes + residual predicate recheck.

    Probe atoms may be :class:`~repro.query.ast.Parameter` placeholders
    when the plan was built for a parameterized statement; they resolve
    through ``slots`` each time the scan starts, so a cached plan probes
    with the current binding's values."""

    def __init__(
        self,
        store: NFRStore,
        name: str,
        atoms: Sequence[tuple[str, Any]],
        predicate: ComponentPredicate,
        est: CostEstimate,
        needed: tuple[str, ...] | None = None,
        slots: "ParamSlots | None" = None,
    ):
        super().__init__(store, name, est, predicate, needed)
        self.atoms = list(atoms)
        self.slots = slots

    def _stream(self) -> Iterator[NFRTuple]:
        atoms = self.atoms
        if self.slots is not None:
            atoms = [(a, self.slots.resolve(v)) for a, v in atoms]
        return self.store.stream_probe(atoms, self.needed)

    def describe(self) -> str:
        probes = ", ".join(f"{a}∋{v!r}" for a, v in self.atoms)
        return (
            f"IndexScan {self.name} via AtomIndex({probes}) "
            f"[{self.predicate.description}]{_decode_note(self.needed)}"
        )


class EmptyResult(PhysicalOp):
    """A statically contradictory predicate: produce nothing."""

    def __init__(self, names: tuple[str, ...]):
        super().__init__(CostEstimate(rows=0.0, cost=0.0))
        self.names = names

    def output_schema(self) -> RelationSchema:
        return RelationSchema(list(self.names))

    def _run(self) -> NFRelation:
        return NFRelation(self.output_schema())

    def describe(self) -> str:
        return "EmptyResult [contradictory predicate]"


# -- streaming tuple operators -------------------------------------------------


class Filter(StreamingOp):
    def __init__(
        self,
        child: PhysicalOp,
        predicate: ComponentPredicate,
        est: CostEstimate,
    ):
        super().__init__(est)
        self.child = child
        self.predicate = predicate

    def output_schema(self) -> RelationSchema:
        return self.child.output_schema()

    def iter_batches(self) -> Iterator[Batch]:
        predicate = self.predicate
        rows = 0
        for batch in self.child.iter_batches():
            kept = [t for t in batch if predicate(t)]
            if kept:
                rows += len(kept)
                yield self._note(kept)
        self.actual_rows = rows

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return f"Filter [{self.predicate.description}]"


class ProjectOp(StreamingOp):
    def __init__(
        self,
        child: PhysicalOp,
        attributes: tuple[str, ...],
        est: CostEstimate,
    ):
        super().__init__(est)
        self.child = child
        self.attributes = attributes

    def output_schema(self) -> RelationSchema:
        return self.child.output_schema().project(list(self.attributes))

    def iter_batches(self) -> Iterator[Batch]:
        names = self.output_schema().names
        rows = 0
        for batch in self.child.iter_batches():
            # Dedupe within the batch (cross-batch duplicates collapse at
            # the next barrier or at materialisation — set semantics).
            out = list(dict.fromkeys(t.project(names) for t in batch))
            if out:
                rows += len(out)
                yield self._note(out)
        self.actual_rows = rows

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return f"Project [{', '.join(self.attributes)}]"


class UnnestOp(StreamingOp):
    def __init__(
        self, child: PhysicalOp, attribute: str, est: CostEstimate
    ):
        super().__init__(est)
        self.child = child
        self.attribute = attribute

    def output_schema(self) -> RelationSchema:
        return self.child.output_schema()

    def iter_batches(self) -> Iterator[Batch]:
        attribute = self.attribute
        self.output_schema().require([attribute])

        def expansions() -> Iterator[Sequence[NFRTuple]]:
            for child_batch in self.child.iter_batches():
                for t in child_batch:
                    comp = t[attribute]
                    if comp.is_singleton:
                        yield (t,)
                    else:
                        yield tuple(
                            t.with_component(attribute, ValueSet.single(v))
                            for v in comp
                        )

        rows = 0
        for batch in self._rebatch(expansions()):
            rows += len(batch)
            yield batch
        self.actual_rows = rows

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return f"Unnest [{self.attribute}]"


class FlattenOp(StreamingOp):
    """Unnest every attribute — per-tuple Cartesian expansion, streamed."""

    def __init__(self, child: PhysicalOp, est: CostEstimate):
        super().__init__(est)
        self.child = child

    def output_schema(self) -> RelationSchema:
        return self.child.output_schema()

    def iter_batches(self) -> Iterator[Batch]:
        def expansions() -> Iterator[Sequence[NFRTuple]]:
            for child_batch in self.child.iter_batches():
                for t in child_batch:
                    if t.is_all_singleton():
                        yield (t,)
                    else:
                        yield tuple(
                            NFRTuple.from_flat(flat) for flat in t.flats()
                        )

        rows = 0
        for batch in self._rebatch(expansions()):
            rows += len(batch)
            yield batch
        self.actual_rows = rows

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return "Flatten"


# -- blocking tuple operators --------------------------------------------------


class NestOp(PhysicalOp):
    """Grouping barrier: consumes the child's batches, then nests."""

    def __init__(
        self,
        child: PhysicalOp,
        attributes: tuple[str, ...],
        est: CostEstimate,
    ):
        super().__init__(est)
        self.child = child
        self.attributes = attributes

    def output_schema(self) -> RelationSchema:
        return self.child.output_schema()

    def _run(self) -> NFRelation:
        src = self.child.execute()
        src.schema.require(self.attributes)
        return nest_sequence(src, list(self.attributes))

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return f"Nest [{', '.join(self.attributes)}]"


class CanonicalOp(PhysicalOp):
    def __init__(
        self,
        child: PhysicalOp,
        order: tuple[str, ...],
        est: CostEstimate,
    ):
        super().__init__(est)
        self.child = child
        self.order = order

    def output_schema(self) -> RelationSchema:
        return self.child.output_schema()

    def _run(self) -> NFRelation:
        return canonical_form(
            self.child.execute().to_1nf(), list(self.order)
        )

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return f"Canonical [{', '.join(self.order)}]"


# -- joins and set operators ---------------------------------------------------


def nf2_hash_join(left: NFRelation, right: NFRelation) -> NFRelation:
    """Jaeschke-Schek NF2 natural join, hashing the *smaller* input on
    its shared component sets and probing with the larger."""
    shared = left.schema.common_names(right.schema)
    right_only = [n for n in right.schema.names if n not in shared]
    schema = (
        left.schema.concat(right.schema.project(right_only))
        if right_only
        else left.schema
    )

    def emit(lt: NFRTuple, rt: NFRTuple) -> NFRTuple:
        return NFRTuple(
            schema, list(lt.components) + [rt[n] for n in right_only]
        )

    if not shared:
        return NFRelation(
            schema, (emit(lt, rt) for lt in left for rt in right)
        )

    if left.cardinality <= right.cardinality:
        build, probe, probe_is_left = left, right, False
    else:
        build, probe, probe_is_left = right, left, True
    buckets: dict[tuple, list[NFRTuple]] = {}
    for bt in build:
        buckets.setdefault(tuple(bt[n] for n in shared), []).append(bt)
    out: list[NFRTuple] = []
    for pt in probe:
        key = tuple(pt[n] for n in shared)
        for bt in buckets.get(key, ()):
            out.append(emit(pt, bt) if probe_is_left else emit(bt, pt))
    return NFRelation(schema, out)


class _JoinOp(PhysicalOp):
    """Shared schema derivation for the two hash joins."""

    def __init__(
        self, left: PhysicalOp, right: PhysicalOp, est: CostEstimate
    ):
        super().__init__(est)
        self.left = left
        self.right = right

    def output_schema(self) -> RelationSchema:
        ls = self.left.output_schema()
        rs = self.right.output_schema()
        right_only = [n for n in rs.names if n not in ls.names]
        return ls.concat(rs.project(right_only)) if right_only else ls

    def children(self):
        return (self.left, self.right)


class HashJoin(_JoinOp):
    """NF2 natural join (shared components set-equal), hash-based."""

    def _run(self) -> NFRelation:
        return nf2_hash_join(self.left.execute(), self.right.execute())

    def describe(self) -> str:
        return "HashJoin [nf2-natural, set-equal components]"


class FlatHashJoin(_JoinOp):
    """Natural join of the underlying R*s (hash join on shared atomic
    keys), returned in all-singleton form."""

    def _run(self) -> NFRelation:
        joined = natural_join(
            self.left.execute().to_1nf(), self.right.execute().to_1nf()
        )
        return NFRelation.from_1nf(joined)

    def describe(self) -> str:
        return "FlatHashJoin [1nf-natural, atomic keys]"


class UnionOp(PhysicalOp):
    def __init__(
        self, left: PhysicalOp, right: PhysicalOp, est: CostEstimate
    ):
        super().__init__(est)
        self.left = left
        self.right = right

    def output_schema(self) -> RelationSchema:
        return self.left.output_schema()

    def _run(self) -> NFRelation:
        lhs = self.left.execute()
        rhs = _aligned(lhs, self.right.execute(), "UNION")
        return NFRelation(lhs.schema, lhs.tuples | rhs.tuples)

    def children(self):
        return (self.left, self.right)

    def describe(self) -> str:
        return "Union"


class DifferenceOp(PhysicalOp):
    def __init__(
        self, left: PhysicalOp, right: PhysicalOp, est: CostEstimate
    ):
        super().__init__(est)
        self.left = left
        self.right = right

    def output_schema(self) -> RelationSchema:
        return self.left.output_schema()

    def _run(self) -> NFRelation:
        lhs = self.left.execute()
        rhs = _aligned(lhs, self.right.execute(), "DIFFERENCE")
        return NFRelation.from_1nf(
            difference(lhs.to_1nf(), rhs.to_1nf())
        )

    def children(self):
        return (self.left, self.right)

    def describe(self) -> str:
        return "Difference [R*-level]"


def _aligned(
    left: NFRelation, right: NFRelation, opname: str
) -> NFRelation:
    """Reorder ``right`` onto ``left``'s schema, sharing the naive
    evaluator's alignment (imported lazily: the evaluator module only
    imports the planner inside functions, so this cannot cycle)."""
    from repro.query.evaluator import _align_right

    return _align_right(left, right, opname)
