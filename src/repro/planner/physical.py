"""Physical operators for the NF2 planner.

Each operator materialises an
:class:`~repro.core.nfr_relation.NFRelation` and records what actually
happened (rows produced, pages read, index probes) next to the
planner's estimates, so ``EXPLAIN ANALYZE`` can show estimated vs
actual side by side.

Access paths:

- :class:`MemoryScan` — the catalog's in-memory relation (no page I/O);
- :class:`HeapScan` — full scan of the relation's paged store, with an
  optional residual filter applied while scanning;
- :class:`IndexScan` — :class:`~repro.storage.index.AtomIndex` probes
  produce candidate records, which are re-checked against the full
  predicate (equality conditions need the residual check; CONTAINS
  probes are exact).

Joins are hash-based: :class:`HashJoin` buckets the smaller input on
the shared component sets (set-equality is the Jaeschke-Schek join
condition, so whole :class:`~repro.core.values.ValueSet` components are
the hash keys); :class:`FlatHashJoin` hashes the flattened R* rows on
their shared atomic values.  Both replace nested-loop evaluation with
one build pass and one probe pass.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.canonical import canonical_form
from repro.core.nest import nest_sequence, unnest, unnest_fully
from repro.core.nfr_relation import NFRelation
from repro.core.nfr_tuple import NFRTuple
from repro.nf2_algebra.operators import ComponentPredicate
from repro.planner.cost import CostEstimate
from repro.relational.algebra import difference, natural_join
from repro.relational.schema import RelationSchema
from repro.storage.engine import NFRStore


class PhysicalOp:
    """Base class: estimated numbers at plan time, actuals after
    :meth:`execute`."""

    def __init__(self, est: CostEstimate):
        self.est = est
        self.actual_rows: int | None = None
        self.actual_pages: int | None = None
        self.actual_index_lookups: int | None = None

    def execute(self) -> NFRelation:
        result = self._run()
        self.actual_rows = result.cardinality
        return result

    def _run(self) -> NFRelation:  # pragma: no cover - abstract
        raise NotImplementedError

    def children(self) -> tuple["PhysicalOp", ...]:
        return ()

    def describe(self) -> str:  # pragma: no cover - abstract
        return type(self).__name__

    def total_pages_read(self) -> int:
        """Pages actually read by this subtree (0 before execution)."""
        own = self.actual_pages or 0
        return own + sum(c.total_pages_read() for c in self.children())

    def total_index_lookups(self) -> int:
        own = self.actual_index_lookups or 0
        return own + sum(c.total_index_lookups() for c in self.children())


# -- access paths --------------------------------------------------------------


class MemoryScan(PhysicalOp):
    """Scan the catalog's in-memory NFR (no page I/O)."""

    def __init__(self, relation: NFRelation, name: str, est: CostEstimate):
        super().__init__(est)
        self.relation = relation
        self.name = name

    def _run(self) -> NFRelation:
        return self.relation

    def describe(self) -> str:
        return f"MemoryScan {self.name}"


class HeapScan(PhysicalOp):
    """Full scan of the paged store, optionally filtering in-line."""

    def __init__(
        self,
        store: NFRStore,
        name: str,
        est: CostEstimate,
        predicate: ComponentPredicate | None = None,
    ):
        super().__init__(est)
        self.store = store
        self.name = name
        self.predicate = predicate

    def _run(self) -> NFRelation:
        tuples, stats = self.store.scan_tuples()
        self.actual_pages = stats.page_reads
        self.actual_index_lookups = 0
        if self.predicate is not None:
            tuples = [t for t in tuples if self.predicate(t)]
        return NFRelation(self.store.schema, tuples)

    def describe(self) -> str:
        if self.predicate is not None:
            return f"HeapScan {self.name} [{self.predicate.description}]"
        return f"HeapScan {self.name}"


class IndexScan(PhysicalOp):
    """AtomIndex candidate probes + residual predicate recheck."""

    def __init__(
        self,
        store: NFRStore,
        name: str,
        atoms: Sequence[tuple[str, Any]],
        predicate: ComponentPredicate,
        est: CostEstimate,
    ):
        super().__init__(est)
        self.store = store
        self.name = name
        self.atoms = list(atoms)
        self.predicate = predicate

    def _run(self) -> NFRelation:
        candidates, stats = self.store.probe_tuples(self.atoms)
        self.actual_pages = stats.page_reads
        self.actual_index_lookups = stats.index_lookups
        return NFRelation(
            self.store.schema,
            (t for t in candidates if self.predicate(t)),
        )

    def describe(self) -> str:
        probes = ", ".join(f"{a}∋{v!r}" for a, v in self.atoms)
        return (
            f"IndexScan {self.name} via AtomIndex({probes}) "
            f"[{self.predicate.description}]"
        )


class EmptyResult(PhysicalOp):
    """A statically contradictory predicate: produce nothing."""

    def __init__(self, names: tuple[str, ...]):
        super().__init__(CostEstimate(rows=0.0, cost=0.0))
        self.names = names

    def _run(self) -> NFRelation:
        return NFRelation(RelationSchema(list(self.names)))

    def describe(self) -> str:
        return "EmptyResult [contradictory predicate]"


# -- tuple-at-a-time operators -------------------------------------------------


class Filter(PhysicalOp):
    def __init__(
        self,
        child: PhysicalOp,
        predicate: ComponentPredicate,
        est: CostEstimate,
    ):
        super().__init__(est)
        self.child = child
        self.predicate = predicate

    def _run(self) -> NFRelation:
        src = self.child.execute()
        return NFRelation(
            src.schema, (t for t in src if self.predicate(t))
        )

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return f"Filter [{self.predicate.description}]"


class ProjectOp(PhysicalOp):
    def __init__(
        self,
        child: PhysicalOp,
        attributes: tuple[str, ...],
        est: CostEstimate,
    ):
        super().__init__(est)
        self.child = child
        self.attributes = attributes

    def _run(self) -> NFRelation:
        src = self.child.execute()
        sub = src.schema.project(list(self.attributes))
        return NFRelation(sub, (t.project(sub.names) for t in src))

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return f"Project [{', '.join(self.attributes)}]"


class NestOp(PhysicalOp):
    def __init__(
        self,
        child: PhysicalOp,
        attributes: tuple[str, ...],
        est: CostEstimate,
    ):
        super().__init__(est)
        self.child = child
        self.attributes = attributes

    def _run(self) -> NFRelation:
        src = self.child.execute()
        src.schema.require(self.attributes)
        return nest_sequence(src, list(self.attributes))

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return f"Nest [{', '.join(self.attributes)}]"


class UnnestOp(PhysicalOp):
    def __init__(
        self, child: PhysicalOp, attribute: str, est: CostEstimate
    ):
        super().__init__(est)
        self.child = child
        self.attribute = attribute

    def _run(self) -> NFRelation:
        return unnest(self.child.execute(), self.attribute)

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return f"Unnest [{self.attribute}]"


class CanonicalOp(PhysicalOp):
    def __init__(
        self,
        child: PhysicalOp,
        order: tuple[str, ...],
        est: CostEstimate,
    ):
        super().__init__(est)
        self.child = child
        self.order = order

    def _run(self) -> NFRelation:
        return canonical_form(
            self.child.execute().to_1nf(), list(self.order)
        )

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return f"Canonical [{', '.join(self.order)}]"


class FlattenOp(PhysicalOp):
    def __init__(self, child: PhysicalOp, est: CostEstimate):
        super().__init__(est)
        self.child = child

    def _run(self) -> NFRelation:
        return unnest_fully(self.child.execute())

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return "Flatten"


# -- joins and set operators ---------------------------------------------------


def nf2_hash_join(left: NFRelation, right: NFRelation) -> NFRelation:
    """Jaeschke-Schek NF2 natural join, hashing the *smaller* input on
    its shared component sets and probing with the larger."""
    shared = left.schema.common_names(right.schema)
    right_only = [n for n in right.schema.names if n not in shared]
    schema = (
        left.schema.concat(right.schema.project(right_only))
        if right_only
        else left.schema
    )

    def emit(lt: NFRTuple, rt: NFRTuple) -> NFRTuple:
        return NFRTuple(
            schema, list(lt.components) + [rt[n] for n in right_only]
        )

    if not shared:
        return NFRelation(
            schema, (emit(lt, rt) for lt in left for rt in right)
        )

    if left.cardinality <= right.cardinality:
        build, probe, probe_is_left = left, right, False
    else:
        build, probe, probe_is_left = right, left, True
    buckets: dict[tuple, list[NFRTuple]] = {}
    for bt in build:
        buckets.setdefault(tuple(bt[n] for n in shared), []).append(bt)
    out: list[NFRTuple] = []
    for pt in probe:
        key = tuple(pt[n] for n in shared)
        for bt in buckets.get(key, ()):
            out.append(emit(pt, bt) if probe_is_left else emit(bt, pt))
    return NFRelation(schema, out)


class HashJoin(PhysicalOp):
    """NF2 natural join (shared components set-equal), hash-based."""

    def __init__(
        self, left: PhysicalOp, right: PhysicalOp, est: CostEstimate
    ):
        super().__init__(est)
        self.left = left
        self.right = right

    def _run(self) -> NFRelation:
        return nf2_hash_join(self.left.execute(), self.right.execute())

    def children(self):
        return (self.left, self.right)

    def describe(self) -> str:
        return "HashJoin [nf2-natural, set-equal components]"


class FlatHashJoin(PhysicalOp):
    """Natural join of the underlying R*s (hash join on shared atomic
    keys), returned in all-singleton form."""

    def __init__(
        self, left: PhysicalOp, right: PhysicalOp, est: CostEstimate
    ):
        super().__init__(est)
        self.left = left
        self.right = right

    def _run(self) -> NFRelation:
        joined = natural_join(
            self.left.execute().to_1nf(), self.right.execute().to_1nf()
        )
        return NFRelation.from_1nf(joined)

    def children(self):
        return (self.left, self.right)

    def describe(self) -> str:
        return "FlatHashJoin [1nf-natural, atomic keys]"


class UnionOp(PhysicalOp):
    def __init__(
        self, left: PhysicalOp, right: PhysicalOp, est: CostEstimate
    ):
        super().__init__(est)
        self.left = left
        self.right = right

    def _run(self) -> NFRelation:
        lhs = self.left.execute()
        rhs = _aligned(lhs, self.right.execute(), "UNION")
        return NFRelation(lhs.schema, lhs.tuples | rhs.tuples)

    def children(self):
        return (self.left, self.right)

    def describe(self) -> str:
        return "Union"


class DifferenceOp(PhysicalOp):
    def __init__(
        self, left: PhysicalOp, right: PhysicalOp, est: CostEstimate
    ):
        super().__init__(est)
        self.left = left
        self.right = right

    def _run(self) -> NFRelation:
        lhs = self.left.execute()
        rhs = _aligned(lhs, self.right.execute(), "DIFFERENCE")
        return NFRelation.from_1nf(
            difference(lhs.to_1nf(), rhs.to_1nf())
        )

    def children(self):
        return (self.left, self.right)

    def describe(self) -> str:
        return "Difference [R*-level]"


def _aligned(
    left: NFRelation, right: NFRelation, opname: str
) -> NFRelation:
    """Reorder ``right`` onto ``left``'s schema, sharing the naive
    evaluator's alignment (imported lazily: the evaluator module only
    imports the planner inside functions, so this cannot cycle)."""
    from repro.query.evaluator import _align_right

    return _align_right(left, right, opname)
