"""Executable identities of the NF2 algebra (Jaeschke-Schek [7]).

Each function checks one law on a concrete relation and returns a bool;
the test suite runs them over hypothesis-generated inputs, and
counterexample finders document where the *non*-laws fail (the algebra
is famously not free: nests do not commute in general, and nest does not
invert unnest on arbitrary NFRs).
"""

from __future__ import annotations

from repro.core.nest import is_nested_on, nest, unnest
from repro.core.nfr_relation import NFRelation
from repro.core.nfr_tuple import NFRTuple
from repro.core.values import ValueSet
from repro.relational.schema import RelationSchema


def unnest_inverts_nest(relation: NFRelation, attribute: str) -> bool:
    """unnest_A(nest_A(R)) == R — holds whenever R is *flat on A*
    (every A-component a singleton), in particular for lifted 1NF
    relations.  This is the J&S identity the paper relies on for
    Theorem 1."""
    return unnest(nest(relation, attribute), attribute) == relation


def nest_inverts_unnest(relation: NFRelation, attribute: str) -> bool:
    """nest_A(unnest_A(R)) == R — holds iff R is already nested on A
    (a fixpoint of nest_A).  False in general."""
    return nest(unnest(relation, attribute), attribute) == relation


def nest_inverts_unnest_iff_nested(
    relation: NFRelation, attribute: str
) -> bool:
    """The two sides of the iff, checked against each other."""
    return nest_inverts_unnest(relation, attribute) == is_nested_on(
        relation, attribute
    )


def nests_commute(relation: NFRelation, a: str, b: str) -> bool:
    """Does v_A(v_B(R)) == v_B(v_A(R)) for this input?  NOT a law —
    see :func:`nest_commutation_counterexample`."""
    return nest(nest(relation, b), a) == nest(nest(relation, a), b)


def nest_commutation_counterexample() -> tuple[NFRelation, str, str]:
    """A concrete (R, A, B) with v_A(v_B(R)) != v_B(v_A(R)).

    Example 1's relation works: nesting A first merges along A-groups
    that nesting B first destroys.
    """
    schema = RelationSchema(["A", "B"])
    relation = NFRelation(
        schema,
        [
            NFRTuple(schema, [ValueSet(["a1"]), ValueSet(["b1"])]),
            NFRTuple(schema, [ValueSet(["a2"]), ValueSet(["b1"])]),
            NFRTuple(schema, [ValueSet(["a2"]), ValueSet(["b2"])]),
            NFRTuple(schema, [ValueSet(["a3"]), ValueSet(["b2"])]),
        ],
    )
    assert not nests_commute(relation, "A", "B")
    return relation, "A", "B"


def unnests_commute(relation: NFRelation, a: str, b: str) -> bool:
    """unnest_A(unnest_B(R)) == unnest_B(unnest_A(R)) — a genuine law
    (unnesting different attributes is confluent)."""
    return unnest(unnest(relation, b), a) == unnest(
        unnest(relation, a), b
    )


def select_commutes_with_nest(
    relation: NFRelation,
    attribute: str,
    predicate,
) -> bool:
    """σ_p(v_A(R)) == v_A(σ_p(R)) for an atom-stable predicate ``p``
    that does not touch A.

    This is the optimizer's pushdown rule.  Atom-stability matters: a
    component-equality predicate is sensitive to how much has been
    merged into the component, so it does not commute.
    """
    lhs = NFRelation(
        relation.schema,
        (t for t in nest(relation, attribute) if predicate(t)),
    )
    rhs = nest(
        NFRelation(relation.schema, (t for t in relation if predicate(t))),
        attribute,
    )
    return lhs == rhs


def select_commutes_with_unnest(
    relation: NFRelation,
    attribute: str,
    predicate,
) -> bool:
    """σ_p(unnest_A(R)) == unnest_A(σ_p(R)) for an atom-stable ``p``
    that does not touch A — the unnest-side pushdown rule the planner's
    rewriter uses alongside :func:`select_commutes_with_nest`."""
    lhs = NFRelation(
        relation.schema,
        (t for t in unnest(relation, attribute) if predicate(t)),
    )
    rhs = unnest(
        NFRelation(relation.schema, (t for t in relation if predicate(t))),
        attribute,
    )
    return lhs == rhs


def select_idempotent(relation: NFRelation, predicate) -> bool:
    """σ_p(σ_p(R)) == σ_p(R) — justifies collapsing duplicate selects
    (and deduplicating conjuncts) in the optimizer."""
    once = NFRelation(
        relation.schema, (t for t in relation if predicate(t))
    )
    twice = NFRelation(once.schema, (t for t in once if predicate(t)))
    return once == twice


def select_nest_noncommutation_example() -> bool:
    """Shows the pushdown rule's side condition is necessary: an
    atom-stable predicate touching the *nested* attribute still commutes
    with nest only in one direction (filter-then-nest loses the merge
    partners).  Returns True when the counterexample behaves as
    documented."""
    from repro.nf2_algebra.operators import contains

    schema = RelationSchema(["A", "B"])
    relation = NFRelation(
        schema,
        [
            NFRTuple(schema, [ValueSet(["a1"]), ValueSet(["b1"])]),
            NFRTuple(schema, [ValueSet(["a2"]), ValueSet(["b1"])]),
        ],
    )
    p = contains("A", "a1")
    nested_then_filtered = NFRelation(
        schema, (t for t in nest(relation, "A") if p(t))
    )
    filtered_then_nested = nest(
        NFRelation(schema, (t for t in relation if p(t))), "A"
    )
    # nest-then-filter keeps [A(a1,a2) B(b1)]; filter-then-nest keeps
    # [A(a1) B(b1)] — different relations, *different R**.
    return nested_then_filtered != filtered_then_nested
