"""NF2 algebra: composable operator trees and a rule-based optimizer.

The paper builds on Jaeschke & Schek's algebra of non-first-normal-form
relations [7] and defers "the optimization strategy" to future work
(§5).  This subpackage supplies both:

- :mod:`operators` — an operator-tree representation of NF2 queries
  (scan, select, project, nest, unnest, join, union, difference) with
  direct evaluation and cost accounting;
- :mod:`laws` — executable statements of the algebra's identities
  (unnest inverts nest; nest inverts unnest only on nested inputs;
  selection/nest commutation conditions);
- :mod:`rewrite` — a rule-based optimizer applying those laws
  (selection pushdown through nest, unnest-of-nest elimination,
  projection merging), with before/after cost measurement.
"""

from repro.nf2_algebra.operators import (
    Difference,
    Join,
    Nest,
    Project,
    Scan,
    Select,
    Union,
    Unnest,
)
from repro.nf2_algebra.rewrite import optimize

__all__ = [
    "Scan",
    "Select",
    "Project",
    "Nest",
    "Unnest",
    "Join",
    "Union",
    "Difference",
    "optimize",
]
