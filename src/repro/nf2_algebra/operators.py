"""Operator trees for the NF2 algebra.

Each node evaluates to an :class:`~repro.core.nfr_relation.NFRelation`;
``evaluate`` threads an :class:`EvalStats` collector so optimizations
are measurable as "NFR tuples materialised by intermediate results" —
the logical-search-space currency of the paper's §2.

Component predicates for :class:`Select` are callables
``NFRTuple -> bool``; the helpers :func:`contains` / :func:`component_eq`
build the two forms the paper's examples need while recording which
attributes they *touch* (the optimizer's pushdown rules depend on that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.core.nest import nest as nest_op
from repro.core.nest import unnest as unnest_op
from repro.core.nfr_relation import NFRelation
from repro.core.nfr_tuple import NFRTuple
from repro.core.values import ValueSet
from repro.errors import AlgebraError


@dataclass
class EvalStats:
    """Tuples materialised per operator application."""

    tuples_materialised: int = 0
    operator_applications: int = 0

    def record(self, relation: NFRelation) -> NFRelation:
        self.tuples_materialised += relation.cardinality
        self.operator_applications += 1
        return relation


class ComponentPredicate:
    """A predicate over NFR tuples that knows which attributes it reads
    and whether it is *atom-stable* (decided by atom membership only, so
    it commutes with nest/unnest on other attributes)."""

    def __init__(
        self,
        fn: Callable[[NFRTuple], bool],
        touches: Sequence[str],
        atom_stable: bool,
        description: str,
    ):
        self.fn = fn
        self.touches = frozenset(touches)
        self.atom_stable = atom_stable
        self.description = description

    def __call__(self, t: NFRTuple) -> bool:
        return self.fn(t)

    def __repr__(self) -> str:
        return self.description


def contains(attribute: str, value: Any) -> ComponentPredicate:
    """``value in t[attribute]`` — atom-stable: unaffected by how other
    attributes are nested, and preserved by unnesting this one."""
    return ComponentPredicate(
        lambda t: value in t[attribute],
        [attribute],
        atom_stable=True,
        description=f"{attribute} CONTAINS {value!r}",
    )


def component_eq(attribute: str, values: Sequence[Any]) -> ComponentPredicate:
    """``t[attribute] == {values}`` — NOT atom-stable: nesting changes
    component sets, so this never commutes past a nest on ``attribute``."""
    target = ValueSet(list(values))
    return ComponentPredicate(
        lambda t: t[attribute] == target,
        [attribute],
        atom_stable=False,
        description=f"{attribute} = {target}",
    )


def conjunction(*predicates: ComponentPredicate) -> ComponentPredicate:
    """AND of component predicates (touches the union, atom-stable iff
    all conjuncts are)."""
    touches: set[str] = set()
    for p in predicates:
        touches |= p.touches
    return ComponentPredicate(
        lambda t: all(p(t) for p in predicates),
        sorted(touches),
        atom_stable=all(p.atom_stable for p in predicates),
        description=" AND ".join(p.description for p in predicates),
    )


# ---------------------------------------------------------------------------
# Operator nodes
# ---------------------------------------------------------------------------


class AlgebraOp:
    """Base class of operator-tree nodes."""

    def evaluate(self, stats: EvalStats | None = None) -> NFRelation:
        stats = stats if stats is not None else EvalStats()
        return self._eval(stats)

    def _eval(self, stats: EvalStats) -> NFRelation:  # pragma: no cover
        raise NotImplementedError

    def children(self) -> tuple["AlgebraOp", ...]:
        return ()

    def explain(self, indent: int = 0) -> str:
        """Render the operator tree, one node per line."""
        line = " " * indent + self.describe()
        parts = [line]
        for child in self.children():
            parts.append(child.explain(indent + 2))
        return "\n".join(parts)

    def describe(self) -> str:  # pragma: no cover
        return type(self).__name__


@dataclass
class Scan(AlgebraOp):
    """Leaf: a named NFR."""

    relation: NFRelation
    name: str = "R"

    def _eval(self, stats: EvalStats) -> NFRelation:
        return stats.record(self.relation)

    def describe(self) -> str:
        return f"Scan({self.name}: {self.relation.cardinality} tuples)"


@dataclass
class Select(AlgebraOp):
    """σ over NFR tuples with a :class:`ComponentPredicate`."""

    source: AlgebraOp
    predicate: ComponentPredicate

    def _eval(self, stats: EvalStats) -> NFRelation:
        src = self.source._eval(stats)
        return stats.record(
            NFRelation(src.schema, (t for t in src if self.predicate(t)))
        )

    def children(self):
        return (self.source,)

    def describe(self) -> str:
        return f"Select[{self.predicate.description}]"


@dataclass
class Project(AlgebraOp):
    """π onto a subset of attributes (set semantics on NFR tuples)."""

    source: AlgebraOp
    attributes: tuple[str, ...]

    def _eval(self, stats: EvalStats) -> NFRelation:
        src = self.source._eval(stats)
        sub = src.schema.project(list(self.attributes))
        return stats.record(
            NFRelation(sub, (t.project(sub.names) for t in src))
        )

    def children(self):
        return (self.source,)

    def describe(self) -> str:
        return f"Project[{', '.join(self.attributes)}]"


@dataclass
class Nest(AlgebraOp):
    """v_attribute (Def. 4)."""

    source: AlgebraOp
    attribute: str

    def _eval(self, stats: EvalStats) -> NFRelation:
        return stats.record(nest_op(self.source._eval(stats), self.attribute))

    def children(self):
        return (self.source,)

    def describe(self) -> str:
        return f"Nest[{self.attribute}]"


@dataclass
class Unnest(AlgebraOp):
    """unnest_attribute."""

    source: AlgebraOp
    attribute: str

    def _eval(self, stats: EvalStats) -> NFRelation:
        return stats.record(unnest_op(self.source._eval(stats), self.attribute))

    def children(self):
        return (self.source,)

    def describe(self) -> str:
        return f"Unnest[{self.attribute}]"


@dataclass
class Join(AlgebraOp):
    """Jaeschke-Schek NF2 natural join: shared components set-equal."""

    left: AlgebraOp
    right: AlgebraOp

    def _eval(self, stats: EvalStats) -> NFRelation:
        from repro.query.evaluator import _nf2_join

        return stats.record(
            _nf2_join(self.left._eval(stats), self.right._eval(stats))
        )

    def children(self):
        return (self.left, self.right)

    def describe(self) -> str:
        return "Join[nf2-natural]"


@dataclass
class Union(AlgebraOp):
    """Tuple-set union over a shared schema."""

    left: AlgebraOp
    right: AlgebraOp

    def _eval(self, stats: EvalStats) -> NFRelation:
        lhs = self.left._eval(stats)
        rhs = self.right._eval(stats)
        if lhs.schema.names != rhs.schema.names:
            raise AlgebraError(
                f"union-incompatible: {lhs.schema.names} vs {rhs.schema.names}"
            )
        return stats.record(NFRelation(lhs.schema, lhs.tuples | rhs.tuples))

    def children(self):
        return (self.left, self.right)

    def describe(self) -> str:
        return "Union"


@dataclass
class Difference(AlgebraOp):
    """R* difference, returned in all-singleton form (information-level)."""

    left: AlgebraOp
    right: AlgebraOp

    def _eval(self, stats: EvalStats) -> NFRelation:
        from repro.relational.algebra import difference

        lhs = self.left._eval(stats)
        rhs = self.right._eval(stats)
        if lhs.schema.names != rhs.schema.names:
            raise AlgebraError(
                f"difference-incompatible: {lhs.schema.names} vs "
                f"{rhs.schema.names}"
            )
        return stats.record(
            NFRelation.from_1nf(difference(lhs.to_1nf(), rhs.to_1nf()))
        )

    def children(self):
        return (self.left, self.right)

    def describe(self) -> str:
        return "Difference"
