"""Rule-based optimizer for NF2 operator trees.

The paper leaves "the optimization strategy" open (§5); these rewrites
are the sound core any such strategy needs, justified by the laws in
:mod:`repro.nf2_algebra.laws`:

1. **Unnest-of-nest elimination**: ``Unnest_A(Nest_A(X)) -> X`` when
   ``X`` is flat on A (statically true when X is a Scan of an
   all-singleton relation, or an Unnest_A).
2. **Selection pushdown through Nest**: ``Select_p(Nest_A(X)) ->
   Nest_A(Select_p(X))`` when ``p`` is atom-stable and does not touch A.
3. **Selection pushdown through Unnest**: same side condition.
4. **Projection merging**: ``Project_Y(Project_X(R)) -> Project_Y(R)``
   (Y must be a subset of X for the input to have been well-formed).
5. **Selection reordering below Join**: ``Select_p(Join(L, R)) ->
   Join(Select_p(L), R)`` when p touches only L's attributes (and
   symmetrically) — sound because the NF2 join matches shared
   components by equality and p is evaluated component-wise.
6. **Duplicate-select collapse**: ``Select_p(Select_p(X)) ->
   Select_p(X)`` (selection is idempotent —
   :func:`repro.nf2_algebra.laws.select_idempotent`).

``optimize`` applies rules to fixpoint, top down, and returns the
rewritten tree; it never changes results (property-tested), only the
intermediate tuple counts.  The query planner
(:mod:`repro.planner.rules`) applies the same rule set on its logical
IR, where conditions are analyzable conjunct lists.
"""

from __future__ import annotations

from repro.nf2_algebra.operators import (
    AlgebraOp,
    Difference,
    Join,
    Nest,
    Project,
    Scan,
    Select,
    Union,
    Unnest,
)


def optimize(node: AlgebraOp) -> AlgebraOp:
    """Rewrite the tree to a fixpoint of the rules above."""
    changed = True
    while changed:
        node, changed = _rewrite(node)
    return node


def _rewrite(node: AlgebraOp) -> tuple[AlgebraOp, bool]:
    # Rewrite children first (bottom-up) so parent rules see final
    # child shapes.
    node, child_changed = _rewrite_children(node)

    # Rule 1: Unnest_A(Nest_A(X)) -> X when X statically flat on A.
    if isinstance(node, Unnest) and isinstance(node.source, Nest):
        inner = node.source
        if node.attribute == inner.attribute and _statically_flat_on(
            inner.source, node.attribute
        ):
            return inner.source, True

    # Rule 2/3: push atom-stable selections below nest/unnest.
    if isinstance(node, Select) and isinstance(node.source, (Nest, Unnest)):
        restructure = node.source
        p = node.predicate
        if p.atom_stable and restructure.attribute not in p.touches:
            pushed = type(restructure)(
                Select(restructure.source, p), restructure.attribute
            )
            return pushed, True

    # Rule 6: collapse duplicate adjacent selects (σ is idempotent).
    # Only the *same predicate object* is provably identical: rendered
    # descriptions can collide across distinct atoms (1 vs '1').
    if isinstance(node, Select) and isinstance(node.source, Select):
        if node.predicate is node.source.predicate:
            return node.source, True

    # Rule 4: merge consecutive projections.
    if isinstance(node, Project) and isinstance(node.source, Project):
        return Project(node.source.source, node.attributes), True

    # Rule 5: push selection into one side of a join.
    if isinstance(node, Select) and isinstance(node.source, Join):
        join = node.source
        p = node.predicate
        left_attrs = _static_attributes(join.left)
        right_attrs = _static_attributes(join.right)
        if left_attrs is not None and p.touches <= left_attrs:
            return Join(Select(join.left, p), join.right), True
        if (
            right_attrs is not None
            and left_attrs is not None
            and p.touches <= (right_attrs - left_attrs)
        ):
            return Join(join.left, Select(join.right, p)), True

    # Push selections below unions (always sound).
    if isinstance(node, Select) and isinstance(node.source, Union):
        union = node.source
        return (
            Union(
                Select(union.left, node.predicate),
                Select(union.right, node.predicate),
            ),
            True,
        )

    return node, child_changed


def _rewrite_children(node: AlgebraOp) -> tuple[AlgebraOp, bool]:
    changed = False
    if isinstance(node, (Select,)):
        new_source, c = _rewrite(node.source)
        if c:
            node = Select(new_source, node.predicate)
            changed = True
    elif isinstance(node, Project):
        new_source, c = _rewrite(node.source)
        if c:
            node = Project(new_source, node.attributes)
            changed = True
    elif isinstance(node, (Nest, Unnest)):
        new_source, c = _rewrite(node.source)
        if c:
            node = type(node)(new_source, node.attribute)
            changed = True
    elif isinstance(node, (Join, Union, Difference)):
        new_left, c1 = _rewrite(node.left)
        new_right, c2 = _rewrite(node.right)
        if c1 or c2:
            node = type(node)(new_left, new_right)
            changed = True
    return node, changed


def _statically_flat_on(node: AlgebraOp, attribute: str) -> bool:
    """Conservative static test: is ``node``'s output guaranteed to have
    singleton components on ``attribute``?"""
    if isinstance(node, Unnest) and node.attribute == attribute:
        return True
    if isinstance(node, Scan):
        return all(
            t[attribute].is_singleton
            for t in node.relation
            if attribute in node.relation.schema
        )
    if isinstance(node, (Select,)):
        return _statically_flat_on(node.source, attribute)
    if isinstance(node, Project) and attribute in node.attributes:
        return _statically_flat_on(node.source, attribute)
    if isinstance(node, Nest) and node.attribute != attribute:
        # nesting another attribute merges tuples and can union A-sets?
        # No: nest on B only unions B-components; A-components must be
        # set-equal to merge, so singletons stay singletons.
        return _statically_flat_on(node.source, attribute)
    return False


def _static_attributes(node: AlgebraOp) -> frozenset[str] | None:
    """The output attribute set of a subtree, when statically known."""
    if isinstance(node, Scan):
        return frozenset(node.relation.schema.names)
    if isinstance(node, Project):
        return frozenset(node.attributes)
    if isinstance(node, (Select, Nest, Unnest)):
        return _static_attributes(node.source)
    if isinstance(node, (Join,)):
        left = _static_attributes(node.left)
        right = _static_attributes(node.right)
        if left is None or right is None:
            return None
        return left | right
    if isinstance(node, (Union, Difference)):
        return _static_attributes(node.left)
    return None
