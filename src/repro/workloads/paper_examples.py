"""The paper's figures and examples as executable fixtures.

Every relation printed in the paper is reconstructed here exactly —
Figs. 1-2 (the student/course/club/semester update scenario) and
Examples 1-3 (irreducible forms, canonical-vs-minimum, MVD fixedness) —
so tests can assert the paper's stated outcomes verbatim and benchmarks
can regenerate the figures.
"""

from __future__ import annotations

from repro.core.nfr_relation import NFRelation
from repro.dependencies.mvd import MultivaluedDependency
from repro.relational.relation import Relation

# ---------------------------------------------------------------------------
# Fig. 1 — R1[Student, Course, Club] and R2[Student, Course, Semester]
# ---------------------------------------------------------------------------

#: R1 as printed in Fig. 1: each tuple is a student entity; the MVD
#: Student ->-> Course | Club holds.
FIG1_R1 = NFRelation.from_components(
    ["Student", "Course", "Club"],
    [
        (["s1"], ["c1", "c2", "c3"], ["b1"]),
        (["s2"], ["c1", "c2", "c3"], ["b2"]),
        (["s3"], ["c1", "c2", "c3"], ["b1"]),
    ],
)

#: R2 as printed in Fig. 1: relationship relation, no MVD.
FIG1_R2 = NFRelation.from_components(
    ["Student", "Course", "Semester"],
    [
        (["s1", "s2", "s3"], ["c1", "c2"], ["t1"]),
        (["s1", "s3"], ["c3"], ["t1"]),
        (["s2"], ["c3"], ["t2"]),
    ],
)

# ---------------------------------------------------------------------------
# Fig. 2 — the same relations after "student s1 stops taking course c1"
# ---------------------------------------------------------------------------

#: Fig. 2 R1: the value c1 is removed from s1's Course component only.
FIG2_R1 = NFRelation.from_components(
    ["Student", "Course", "Club"],
    [
        (["s1"], ["c2", "c3"], ["b1"]),
        (["s2"], ["c1", "c2", "c3"], ["b2"]),
        (["s3"], ["c1", "c2", "c3"], ["b1"]),
    ],
)

#: Fig. 2 R2: the first tuple splits — (s2,s3) keep (c1,c2) in t1, s1
#: keeps only c2 in t1.
FIG2_R2 = NFRelation.from_components(
    ["Student", "Course", "Semester"],
    [
        (["s2", "s3"], ["c1", "c2"], ["t1"]),
        (["s1"], ["c2"], ["t1"]),
        (["s1", "s3"], ["c3"], ["t1"]),
        (["s2"], ["c3"], ["t2"]),
    ],
)

#: The MVD the paper attributes to R1 (and not to R2).
FIG1_MVD = MultivaluedDependency(["Student"], ["Course"])

#: The flat tuples dropped by the Fig. 1 -> Fig. 2 update: every
#: (s1, c1, *) tuple of each relation.
def fig1_deleted_flats_r1():
    """Flat tuples (s1, c1, b) of R1* to delete."""
    return [
        f
        for f in FIG1_R1.to_1nf()
        if f["Student"] == "s1" and f["Course"] == "c1"
    ]


def fig1_deleted_flats_r2():
    """Flat tuples (s1, c1, t) of R2* to delete."""
    return [
        f
        for f in FIG1_R2.to_1nf()
        if f["Student"] == "s1" and f["Course"] == "c1"
    ]


# ---------------------------------------------------------------------------
# Example 1 — two irreducible forms of a 4-tuple relation over {A, B}
# ---------------------------------------------------------------------------

EXAMPLE1_R = Relation.from_rows(
    ["A", "B"],
    [
        ("a1", "b1"),
        ("a2", "b1"),
        ("a2", "b2"),
        ("a3", "b2"),
    ],
)

#: The 2-tuple irreducible form the paper derives via v_A twice.
EXAMPLE1_R1 = NFRelation.from_components(
    ["A", "B"],
    [
        (["a1", "a2"], ["b1"]),
        (["a2", "a3"], ["b2"]),
    ],
)

#: The 3-tuple irreducible form via v_B(r2, r3).
EXAMPLE1_R2 = NFRelation.from_components(
    ["A", "B"],
    [
        (["a1"], ["b1"]),
        (["a2"], ["b1", "b2"]),
        (["a3"], ["b2"]),
    ],
)

# ---------------------------------------------------------------------------
# Example 2 — an irreducible form smaller than every canonical form
# ---------------------------------------------------------------------------

#: Six tuples over {A, B, C}.  The paper's printed list contains an
#: evident OCR duplication (r2 = r3 and r4 = r5 as printed, which would
#: leave only 4 distinct tuples); the intended relation — the one
#: consistent with the claimed irreducible form R4 and with "thinking
#: over the symmetricity of R3" — is the 6-tuple symmetric-difference
#: pattern below.  R4 and RB (the canonical form after v_CBA) then come
#: out exactly as printed.
EXAMPLE2_R3 = Relation.from_rows(
    ["A", "B", "C"],
    [
        ("a1", "b1", "c2"),
        ("a1", "b2", "c2"),
        ("a1", "b2", "c1"),
        ("a2", "b1", "c1"),
        ("a2", "b1", "c2"),
        ("a2", "b2", "c1"),
    ],
)

#: The 3-tuple irreducible form R4 printed in Example 2.
EXAMPLE2_R4 = NFRelation.from_components(
    ["A", "B", "C"],
    [
        (["a1"], ["b1", "b2"], ["c2"]),
        (["a2"], ["b1"], ["c1", "c2"]),
        (["a1", "a2"], ["b2"], ["c1"]),
    ],
)

#: The 4-tuple canonical form RB printed in Example 2.  The operator
#: token is OCR-garbled in the source text; recomputing all six nest
#: orders shows the printed RB is the canonical form for nest order
#: [A, B, C] in our convention (A nested first) — v_CBA in the paper's
#: rightmost-first Def. 5 notation.
EXAMPLE2_RB = NFRelation.from_components(
    ["A", "B", "C"],
    [
        (["a1", "a2"], ["b1"], ["c2"]),
        (["a1", "a2"], ["b2"], ["c1"]),
        (["a1"], ["b2"], ["c2"]),
        (["a2"], ["b1"], ["c1"]),
    ],
)

# ---------------------------------------------------------------------------
# Example 3 — MVD A ->-> B | C and fixedness of irreducible forms
# ---------------------------------------------------------------------------

EXAMPLE3_R5 = Relation.from_rows(
    ["A", "B", "C"],
    [
        ("a1", "b1", "c1"),
        ("a1", "b2", "c1"),
        ("a2", "b1", "c1"),
        ("a2", "b1", "c2"),
    ],
)

EXAMPLE3_MVD = MultivaluedDependency(["A"], ["B"])

#: R7: irreducible, fixed on A.
EXAMPLE3_R7 = NFRelation.from_components(
    ["A", "B", "C"],
    [
        (["a1"], ["b1", "b2"], ["c1"]),
        (["a2"], ["b1"], ["c1", "c2"]),
    ],
)

#: R8: irreducible but NOT fixed on A.
EXAMPLE3_R8 = NFRelation.from_components(
    ["A", "B", "C"],
    [
        (["a1", "a2"], ["b1"], ["c1"]),
        (["a1"], ["b2"], ["c1"]),
        (["a2"], ["b1"], ["c2"]),
    ],
)

# ---------------------------------------------------------------------------
# §3.2 composition example
# ---------------------------------------------------------------------------

COMPOSITION_T1 = NFRelation.from_components(
    ["A", "B", "C"], [(["a1", "a2"], ["b1", "b2"], ["c1"])]
).sorted_tuples()[0]

COMPOSITION_T2 = NFRelation.from_components(
    ["A", "B", "C"], [(["a1", "a2"], ["b3"], ["c1"])]
).sorted_tuples()[0]

COMPOSITION_T3 = NFRelation.from_components(
    ["A", "B", "C"], [(["a1", "a2"], ["b1", "b2", "b3"], ["c1"])]
).sorted_tuples()[0]
