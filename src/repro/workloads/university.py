"""University-registrar workload — the paper's running example, scaled.

Fig. 1 motivates NFRs with Student/Course/Club and
Student/Course/Semester relations.  This module generates arbitrarily
large instances with the same dependency structure:

- ``enrollment`` — entity-style: the MVD
  ``Student ->-> Course | Club`` holds (each student's courses and clubs
  vary independently), so the student-nested NFR is maximally compact;
- ``registration`` — relationship-style: no MVD is planted, so
  compression and update behaviour are workload-driven (the paper's R2).

Generators are deterministic given a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.dependencies.mvd import MultivaluedDependency
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema

ENROLLMENT_SCHEMA = RelationSchema(["Student", "Course", "Club"])
REGISTRATION_SCHEMA = RelationSchema(["Student", "Course", "Semester"])

ENROLLMENT_MVD = MultivaluedDependency(["Student"], ["Course"])


@dataclass(frozen=True)
class UniversityConfig:
    """Size knobs for the generated registrar."""

    students: int = 50
    courses: int = 20
    clubs: int = 8
    semesters: int = 4
    courses_per_student: int = 4
    clubs_per_student: int = 2
    seed: int = 0


def enrollment(config: UniversityConfig = UniversityConfig()) -> Relation:
    """Entity-style Student/Course/Club relation with the Fig. 1 MVD.

    For each student, pick a course set and a club set and emit their
    full product — exactly the structure making
    ``Student ->-> Course | Club`` hold.
    """
    rng = random.Random(config.seed)
    rows = []
    for s in range(config.students):
        student = f"s{s}"
        n_courses = max(1, min(config.courses, _jitter(rng, config.courses_per_student)))
        n_clubs = max(1, min(config.clubs, _jitter(rng, config.clubs_per_student)))
        courses = rng.sample(range(config.courses), n_courses)
        clubs = rng.sample(range(config.clubs), n_clubs)
        for c in courses:
            for b in clubs:
                rows.append((student, f"c{c}", f"b{b}"))
    return Relation.from_rows(ENROLLMENT_SCHEMA, rows)


def registration(config: UniversityConfig = UniversityConfig()) -> Relation:
    """Relationship-style Student/Course/Semester relation (no MVD
    planted): each student takes each chosen course in one specific
    semester, so courses and semesters are entangled (the paper's R2)."""
    rng = random.Random(config.seed + 1)
    rows = []
    for s in range(config.students):
        student = f"s{s}"
        n_courses = max(1, min(config.courses, _jitter(rng, config.courses_per_student)))
        courses = rng.sample(range(config.courses), n_courses)
        for c in courses:
            semester = rng.randrange(config.semesters)
            rows.append((student, f"c{c}", f"t{semester}"))
    return Relation.from_rows(REGISTRATION_SCHEMA, rows)


def drop_course_updates(
    relation: Relation, student: str, course: str
) -> list:
    """The Fig. 1 -> Fig. 2 update: all flat tuples (student, course, *)
    to delete from a relation (any schema with Student and Course)."""
    return [
        f
        for f in relation
        if f["Student"] == student and f["Course"] == course
    ]


def _jitter(rng: random.Random, mean: int) -> int:
    """Small integer jitter around a mean (mean-1 .. mean+1)."""
    return mean + rng.choice((-1, 0, 1))
