"""Synthetic 1NF workloads with planted dependency structure.

Every generator is deterministic given a seed and returns a plain
:class:`~repro.relational.relation.Relation`; the planted structure is
verifiable with :mod:`repro.dependencies.discovery`.

Generators
----------
- :func:`random_relation` — uniform random tuples (no structure);
- :func:`with_planted_fd` — FD ``X -> Y`` holds by construction;
- :func:`with_planted_mvd` — MVD ``X ->-> Y | Z`` holds by construction
  (per-key Cartesian blocks, the Fig. 1 pattern);
- :func:`product_blocks` — disjoint full products (maximal NFR
  compressibility: each block composes to a single tuple);
- :func:`skewed_relation` — Zipf-ish frequency skew over one attribute
  (moderate, uneven compressibility).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema


def _values(prefix: str, count: int) -> list[str]:
    return [f"{prefix}{i}" for i in range(count)]


def random_relation(
    attributes: Sequence[str],
    cardinality: int,
    domain_size: int = 8,
    seed: int = 0,
) -> Relation:
    """Uniform random relation: ``cardinality`` distinct tuples with each
    value drawn from a ``domain_size`` active domain per attribute."""
    rng = random.Random(seed)
    schema = RelationSchema(list(attributes))
    domains = {
        a: _values(a.lower()[:1] or "v", domain_size) for a in schema.names
    }
    rows: set[tuple] = set()
    space = domain_size ** schema.degree
    target = min(cardinality, space)
    while len(rows) < target:
        rows.add(tuple(rng.choice(domains[a]) for a in schema.names))
    return Relation.from_rows(schema, rows)


def with_planted_fd(
    attributes: Sequence[str],
    determinant: Sequence[str],
    cardinality: int,
    domain_size: int = 8,
    seed: int = 0,
) -> Relation:
    """Random relation in which the FD ``determinant -> rest`` holds: each
    determinant combination is assigned one fixed value per dependent
    attribute."""
    rng = random.Random(seed)
    schema = RelationSchema(list(attributes))
    det = list(determinant)
    schema.require(det)
    dep = [a for a in schema.names if a not in det]
    domains = {
        a: _values(a.lower()[:1] or "v", domain_size) for a in schema.names
    }
    assignment: dict[tuple, dict[str, str]] = {}
    rows: set[tuple] = set()
    space = domain_size ** len(det)
    target = min(cardinality, space)
    while len(rows) < target:
        key = tuple(rng.choice(domains[a]) for a in det)
        if key not in assignment:
            assignment[key] = {a: rng.choice(domains[a]) for a in dep}
        values = dict(zip(det, key)) | assignment[key]
        rows.add(tuple(values[a] for a in schema.names))
    return Relation.from_rows(schema, rows)


def with_planted_mvd(
    attributes: Sequence[str],
    determinant: Sequence[str],
    group: Sequence[str],
    keys: int = 10,
    group_size: int = 4,
    complement_size: int = 4,
    domain_size: int = 12,
    seed: int = 0,
) -> Relation:
    """Relation in which MVD ``determinant ->-> group`` holds: for each
    determinant combination, emit the full product of a random ``group``
    value-set and a random complement value-set (the Fig. 1 structure).

    The complement is every attribute outside determinant and group.
    """
    rng = random.Random(seed)
    schema = RelationSchema(list(attributes))
    det = list(determinant)
    grp = list(group)
    schema.require(det)
    schema.require(grp)
    comp = [a for a in schema.names if a not in det and a not in grp]
    if not comp:
        raise ValueError("MVD needs a non-empty complement to be nontrivial")
    domains = {
        a: _values(a.lower()[:1] or "v", domain_size) for a in schema.names
    }
    rows: set[tuple] = set()
    seen_keys: set[tuple] = set()
    while len(seen_keys) < keys:
        key = tuple(rng.choice(domains[a]) for a in det)
        if key in seen_keys:
            continue
        seen_keys.add(key)
        group_tuples = {
            tuple(rng.choice(domains[a]) for a in grp)
            for _ in range(group_size)
        }
        comp_tuples = {
            tuple(rng.choice(domains[a]) for a in comp)
            for _ in range(complement_size)
        }
        for g in group_tuples:
            for c in comp_tuples:
                values = dict(zip(det, key)) | dict(zip(grp, g)) | dict(
                    zip(comp, c)
                )
                rows.add(tuple(values[a] for a in schema.names))
    return Relation.from_rows(schema, rows)


def product_blocks(
    attributes: Sequence[str],
    blocks: int = 5,
    block_side: int = 3,
    seed: int = 0,
) -> Relation:
    """Disjoint full-product blocks: block ``i`` contributes the product
    of ``block_side`` fresh values per attribute.  Each block composes to
    exactly one NFR tuple under any nest order — the best case for the
    §2 compression claim (``block_side**degree : 1``)."""
    del seed  # fully deterministic; kept for interface uniformity
    schema = RelationSchema(list(attributes))
    rows = []
    for b in range(blocks):
        per_attr = {
            a: [f"{a.lower()[:1]}{b}_{i}" for i in range(block_side)]
            for a in schema.names
        }
        block_rows = [()]
        for a in schema.names:
            block_rows = [r + (v,) for r in block_rows for v in per_attr[a]]
        rows.extend(block_rows)
    return Relation.from_rows(schema, rows)


def skewed_relation(
    attributes: Sequence[str],
    cardinality: int,
    domain_size: int = 16,
    skew: float = 1.2,
    seed: int = 0,
) -> Relation:
    """Zipf-skewed relation: the first attribute's values follow a
    power-law frequency (rank^-skew), others are uniform.  Hot values
    compose into large components; cold ones stay near-flat."""
    rng = random.Random(seed)
    schema = RelationSchema(list(attributes))
    domains = {
        a: _values(a.lower()[:1] or "v", domain_size) for a in schema.names
    }
    hot = schema.names[0]
    weights = [1.0 / (rank + 1) ** skew for rank in range(domain_size)]
    rows: set[tuple] = set()
    attempts = 0
    max_attempts = cardinality * 50
    while len(rows) < cardinality and attempts < max_attempts:
        attempts += 1
        values = {
            a: (
                rng.choices(domains[a], weights=weights)[0]
                if a == hot
                else rng.choice(domains[a])
            )
            for a in schema.names
        }
        rows.add(tuple(values[a] for a in schema.names))
    return Relation.from_rows(schema, rows)


def update_stream(
    relation: Relation,
    inserts: int,
    deletes: int,
    domain_size: int = 8,
    seed: int = 0,
) -> tuple[list, list]:
    """A reproducible update workload against ``relation``: fresh flat
    tuples to insert (drawn from the same value pools, not already
    present) and existing flat tuples to delete."""
    rng = random.Random(seed)
    schema = relation.schema
    existing = set(t.values for t in relation)
    pools = {a: sorted(relation.column(a)) for a in schema.names}
    for a, pool in pools.items():
        if len(pool) < domain_size:
            pool.extend(
                f"{a.lower()[:1]}x{i}" for i in range(domain_size - len(pool))
            )
    to_insert = []
    guard = 0
    while len(to_insert) < inserts and guard < inserts * 100:
        guard += 1
        row = tuple(rng.choice(pools[a]) for a in schema.names)
        if row not in existing:
            existing.add(row)
            to_insert.append(row)
    ordered = sorted(relation, key=lambda t: t.values)
    rng.shuffle(ordered)
    to_delete = ordered[: min(deletes, len(ordered))]
    from repro.relational.tuples import FlatTuple

    return (
        [FlatTuple(schema, r) for r in to_insert],
        list(to_delete),
    )
