"""Workloads: the paper's exact examples plus synthetic generators."""

from repro.workloads import paper_examples, synthetic, university

__all__ = ["paper_examples", "synthetic", "university"]
