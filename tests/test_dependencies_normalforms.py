"""Tests for repro.dependencies.normalforms."""

from repro.dependencies.fd import FunctionalDependency as FD
from repro.dependencies.mvd import MultivaluedDependency as MVD
from repro.dependencies.normalforms import (
    is_2nf,
    is_3nf,
    is_4nf,
    is_bcnf,
    violates_3nf,
    violates_4nf,
    violates_bcnf,
)


class Test2NF:
    def test_partial_dependency_violates(self):
        # key {A, B}; B -> C is a partial dependency on a non-prime attr.
        fds = [FD.parse("A, B -> C"), FD.parse("B -> C")]
        assert not is_2nf(("A", "B", "C"), fds)

    def test_full_dependency_ok(self):
        fds = [FD.parse("A, B -> C")]
        assert is_2nf(("A", "B", "C"), fds)


class Test3NF:
    def test_transitive_dependency_violates(self):
        fds = [FD.parse("A -> B"), FD.parse("B -> C")]
        assert not is_3nf(("A", "B", "C"), fds)
        violations = violates_3nf(("A", "B", "C"), fds)
        assert any(v.lhs == {"B"} for v in violations)

    def test_key_dependencies_ok(self):
        fds = [FD.parse("A -> B"), FD.parse("A -> C")]
        assert is_3nf(("A", "B", "C"), fds)

    def test_prime_rhs_allowed(self):
        # city/street/zip: zip -> city has prime rhs: 3NF holds.
        fds = [FD.parse("City, Street -> Zip"), FD.parse("Zip -> City")]
        assert is_3nf(("City", "Street", "Zip"), fds)


class TestBCNF:
    def test_prime_rhs_still_violates_bcnf(self):
        fds = [FD.parse("City, Street -> Zip"), FD.parse("Zip -> City")]
        assert not is_bcnf(("City", "Street", "Zip"), fds)
        assert violates_bcnf(("City", "Street", "Zip"), fds)

    def test_single_key_schema_is_bcnf(self):
        fds = [FD.parse("A -> B"), FD.parse("A -> C")]
        assert is_bcnf(("A", "B", "C"), fds)

    def test_trivial_fds_ignored(self):
        assert is_bcnf(("A", "B"), [FD.parse("A, B -> A")])


class Test4NF:
    def test_nonkey_mvd_violates(self):
        deps = [MVD(["A"], ["B"])]
        assert not is_4nf(("A", "B", "C"), deps)
        assert violates_4nf(("A", "B", "C"), deps)

    def test_key_mvd_ok(self):
        # A -> B, C makes A a superkey, so A ->-> B doesn't violate 4NF.
        deps = [FD.parse("A -> B, C"), MVD(["A"], ["B"])]
        assert is_4nf(("A", "B", "C"), deps)

    def test_trivial_mvd_ok(self):
        deps = [MVD(["A"], ["B"])]
        assert is_4nf(("A", "B"), deps)  # rhs covers U - lhs

    def test_paper_fig1_enrollment_not_4nf(self):
        # Student ->-> Course | Club with key {Student, Course, Club}:
        # the classic 4NF violation the paper says NFRs absorb.
        deps = [MVD(["Student"], ["Course"])]
        assert not is_4nf(("Student", "Course", "Club"), deps)
