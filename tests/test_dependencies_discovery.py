"""Tests for repro.dependencies.discovery."""

from repro.dependencies.discovery import (
    discover_fds,
    discover_mvds,
    verify_planted,
)
from repro.dependencies.fd import FunctionalDependency as FD
from repro.dependencies.mvd import MultivaluedDependency as MVD
from repro.relational.relation import Relation
from repro.workloads.synthetic import with_planted_fd, with_planted_mvd


class TestDiscoverFds:
    def test_finds_planted_fd(self):
        r = with_planted_fd(["A", "B", "C"], ["A"], 40, seed=1)
        fds = discover_fds(r)
        assert any(fd.lhs == {"A"} and fd.rhs == {"B"} for fd in fds)
        assert any(fd.lhs == {"A"} and fd.rhs == {"C"} for fd in fds)

    def test_minimality_pruning(self):
        r = with_planted_fd(["A", "B", "C"], ["A"], 40, seed=1)
        fds = discover_fds(r)
        # A -> B discovered, so {A, C} -> B must not be reported.
        assert not any(fd.lhs == {"A", "C"} and fd.rhs == {"B"} for fd in fds)

    def test_no_fds_in_product(self):
        rows = [(a, b) for a in "xy" for b in "uv"]
        r = Relation.from_rows(["A", "B"], rows)
        assert discover_fds(r) == frozenset()

    def test_key_discovered(self):
        r = Relation.from_rows(
            ["Id", "Name"], [(1, "x"), (2, "y"), (3, "x")]
        )
        assert FD(["Id"], ["Name"]) in discover_fds(r)


class TestDiscoverMvds:
    def test_finds_planted_mvd(self):
        r = with_planted_mvd(
            ["A", "B", "C"], ["A"], ["B"], keys=6, seed=2
        )
        mvds = discover_mvds(r)
        assert any(m.lhs == {"A"} for m in mvds)

    def test_fd_implied_mvds_filtered(self):
        r = with_planted_fd(["A", "B", "C"], ["A"], 40, seed=3)
        mvds = discover_mvds(r)
        # A -> B holds, so A ->-> B must be filtered as FD-implied.
        assert not any(
            m.lhs == {"A"} and m.rhs in ({"B"}, {"C"}) for m in mvds
        )

    def test_reports_one_side_of_complement_pair(self):
        r = with_planted_mvd(["A", "B", "C"], ["A"], ["B"], keys=5, seed=4)
        mvds = [m for m in discover_mvds(r) if m.lhs == {"A"}]
        sides = {frozenset(m.rhs) for m in mvds}
        assert not (
            frozenset({"B"}) in sides and frozenset({"C"}) in sides
        )


class TestVerifyPlanted:
    def test_report_flags(self):
        r = with_planted_mvd(["A", "B", "C"], ["A"], ["B"], keys=4, seed=5)
        report = verify_planted(
            r, mvds=[MVD(["A"], ["B"])], fds=[FD(["A"], ["B"])]
        )
        assert report["A ->-> B"] is True
        # the FD will generally not hold in an MVD workload
        assert report["A -> B"] in (True, False)
