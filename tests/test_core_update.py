"""Tests for repro.core.update (§4 insertion/deletion, Theorem A-4)."""

import pytest

from repro.core.canonical import canonical_form
from repro.core.update import CanonicalNFR, NaiveCanonicalNFR, replay_updates
from repro.errors import FlatTupleNotFoundError, UpdateError
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema
from repro.relational.tuples import FlatTuple
from repro.workloads.synthetic import random_relation, update_stream


@pytest.fixture
def rel():
    return Relation.from_rows(
        ["A", "B", "C"],
        [
            ("a1", "b1", "c1"),
            ("a1", "b2", "c1"),
            ("a2", "b1", "c1"),
            ("a2", "b1", "c2"),
        ],
    )


@pytest.fixture
def store(rel):
    return CanonicalNFR(rel, ["A", "B", "C"], validate=True)


class TestConstruction:
    def test_initial_state_is_canonical(self, rel, store):
        assert store.relation == canonical_form(rel, ["A", "B", "C"])
        assert store.is_canonical()

    def test_accepts_nfr_input(self, rel):
        from repro.core.nfr_relation import NFRelation

        store = CanonicalNFR(NFRelation.from_1nf(rel), ["B", "C", "A"])
        assert store.to_1nf() == rel

    def test_empty_relation(self):
        schema = RelationSchema(["A", "B"])
        store = CanonicalNFR(Relation(schema), ["A", "B"], validate=True)
        assert store.cardinality == 0
        store.insert_values("a", "b")
        assert store.cardinality == 1

    def test_order_must_be_permutation(self, rel):
        with pytest.raises(Exception):
            CanonicalNFR(rel, ["A", "B"])


class TestInsertion:
    def test_insert_fresh_flat(self, store):
        assert store.insert_values("a9", "b9", "c9")
        assert store.represents(
            FlatTuple(store.schema, ["a9", "b9", "c9"])
        )

    def test_insert_duplicate_is_noop(self, store, rel):
        before = store.relation
        assert not store.insert_values("a1", "b1", "c1")
        assert store.relation == before
        assert store.counter.since("nothing").compositions >= 0

    def test_insert_matches_full_renest(self, rel, store):
        flat = FlatTuple(store.schema, ["a1", "b1", "c2"])
        store.insert_flat(flat)
        expected = canonical_form(rel.with_tuple(flat), ["A", "B", "C"])
        assert store.relation == expected

    def test_insert_reorders_flat_schema(self, store):
        other = FlatTuple(
            RelationSchema(["C", "A", "B"]), ["c7", "a7", "b7"]
        )
        assert store.insert_flat(other)
        assert store.represents(
            FlatTuple(store.schema, ["a7", "b7", "c7"])
        )

    def test_insert_wrong_schema_rejected(self, store):
        bad = FlatTuple(RelationSchema(["X", "Y", "Z"]), ["x", "y", "z"])
        with pytest.raises(UpdateError):
            store.insert_flat(bad)


class TestDeletion:
    def test_delete_then_absent(self, store):
        store.delete_values("a1", "b1", "c1")
        assert not store.represents(
            FlatTuple(store.schema, ["a1", "b1", "c1"])
        )

    def test_delete_matches_full_renest(self, rel, store):
        flat = FlatTuple(store.schema, ["a2", "b1", "c2"])
        store.delete_flat(flat)
        expected = canonical_form(rel.without_tuple(flat), ["A", "B", "C"])
        assert store.relation == expected

    def test_delete_absent_raises(self, store):
        with pytest.raises(FlatTupleNotFoundError):
            store.delete_values("zz", "zz", "zz")

    def test_delete_everything(self, rel, store):
        for flat in list(rel):
            store.delete_flat(flat)
        assert store.cardinality == 0
        assert store.to_1nf().cardinality == 0

    def test_insert_delete_roundtrip(self, rel, store):
        before = store.relation
        store.insert_values("aX", "bX", "cX")
        store.delete_values("aX", "bX", "cX")
        assert store.relation == before


class TestCounters:
    def test_counters_track_update_work(self, store):
        store.counter.mark("op")
        store.insert_values("a9", "b9", "c9")
        delta = store.counter.since("op")
        assert delta.total_structural >= 0  # fresh tuple may need no ops

    def test_replay_updates(self, rel, store):
        ins, dels = update_stream(rel, 3, 2, seed=1)
        counter = replay_updates(store, inserts=ins, deletes=dels)
        assert counter.since("replay").tuple_probes >= 0
        assert store.is_canonical()


class TestNaiveBaseline:
    def test_naive_agrees_with_maintenance(self, rel):
        fast = CanonicalNFR(rel, ["B", "A", "C"])
        naive = NaiveCanonicalNFR(rel, ["B", "A", "C"])
        ins, dels = update_stream(rel, 5, 3, seed=3)
        for f in ins:
            assert fast.insert_flat(f) == naive.insert_flat(f)
        for f in dels:
            fast.delete_flat(f)
            naive.delete_flat(f)
        assert fast.relation == naive.relation

    def test_naive_insert_duplicate_noop(self, rel):
        naive = NaiveCanonicalNFR(rel, ["A", "B", "C"])
        assert not naive.insert_flat(
            FlatTuple(naive.relation.schema, ["a1", "b1", "c1"])
        )

    def test_naive_delete_absent_raises(self, rel):
        naive = NaiveCanonicalNFR(rel, ["A", "B", "C"])
        with pytest.raises(FlatTupleNotFoundError):
            naive.delete_flat(
                FlatTuple(naive.relation.schema, ["z", "z", "z"])
            )

    def test_naive_cost_scales_with_relation(self):
        small = random_relation(["A", "B", "C"], 30, domain_size=4, seed=1)
        large = random_relation(["A", "B", "C"], 300, domain_size=8, seed=1)
        cost = {}
        for name, rel in (("small", small), ("large", large)):
            naive = NaiveCanonicalNFR(rel, ["A", "B", "C"])
            naive.counter.reset()
            ins, _ = update_stream(rel, 1, 0, seed=9)
            naive.insert_flat(ins[0])
            cost[name] = naive.counter.total_structural
        assert cost["large"] > cost["small"] * 3


class TestTheoremA4Shape:
    """The headline: maintenance cost independent of |R|."""

    def test_cost_flat_across_sizes(self):
        costs = []
        for card in (50, 200, 800):
            rel = random_relation(
                ["A", "B", "C"], card, domain_size=12, seed=5
            )
            store = CanonicalNFR(rel, ["A", "B", "C"])
            store.counter.reset()
            ins, dels = update_stream(rel, 20, 20, seed=6)
            for f in ins:
                store.insert_flat(f)
            for f in dels:
                store.delete_flat(f)
            costs.append(store.counter.total_structural / 40)
        # Mean per-update structural ops must not grow with |R|:
        assert max(costs) <= max(4 * min(costs), min(costs) + 6)

    def test_maintained_cheaper_than_naive_on_large(self):
        rel = random_relation(["A", "B", "C"], 500, domain_size=10, seed=7)
        fast = CanonicalNFR(rel, ["A", "B", "C"])
        naive = NaiveCanonicalNFR(rel, ["A", "B", "C"])
        fast.counter.reset()
        naive.counter.reset()
        ins, _ = update_stream(rel, 5, 0, seed=8)
        for f in ins:
            fast.insert_flat(f)
            naive.insert_flat(f)
        assert fast.counter.total_structural < naive.counter.total_structural / 10
