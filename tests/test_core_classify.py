"""Tests for repro.core.classify (the Fig. 3 taxonomy)."""

from repro.core.classify import census, classify_form
from repro.core.nfr_relation import NFRelation
from repro.workloads.paper_examples import (
    EXAMPLE2_R3,
    EXAMPLE2_R4,
    EXAMPLE2_RB,
    EXAMPLE3_R7,
    EXAMPLE3_R8,
)


class TestClassifyForm:
    def test_canonical_form_classified(self):
        cls = classify_form(EXAMPLE2_RB)
        assert cls.canonical
        assert cls.irreducible
        assert ("A", "B", "C") in cls.canonical_orders

    def test_non_canonical_irreducible(self):
        cls = classify_form(EXAMPLE2_R4)
        assert cls.irreducible
        assert not cls.canonical
        assert cls.cardinality == 3

    def test_fixed_flag(self):
        assert "A" in classify_form(EXAMPLE3_R7).fixed_on
        assert "A" not in classify_form(EXAMPLE3_R8).fixed_on

    def test_region_label(self):
        assert "canonical" in classify_form(EXAMPLE2_RB).region()
        assert "irreducible" in classify_form(EXAMPLE2_R4).region()

    def test_plain_region(self):
        # The lifted 2x2 product: reducible, and fixed on no single
        # domain (every value recurs across tuples).
        nfr = NFRelation.from_components(
            ["A", "B"],
            [
                (["a1"], ["b1"]),
                (["a1"], ["b2"]),
                (["a2"], ["b1"]),
                (["a2"], ["b2"]),
            ],
        )
        cls = classify_form(nfr)
        assert not cls.irreducible
        assert cls.region() == "plain"


class TestCensus:
    def test_example2_census(self):
        result = census(EXAMPLE2_R3)
        # Fig. 3 containments, empirically:
        assert result.canonical <= result.total_irreducible
        assert result.canonical >= 1
        # Example 2's punchline: the minimum irreducible beats every
        # canonical form.
        assert result.min_cardinality == 3
        assert result.min_canonical_cardinality == 4
        assert result.minimum_below_canonical

    def test_example1_census(self, small_ab):
        result = census(small_ab)
        assert result.total_irreducible == 2
        # Both Example 1 forms are canonical (one per order), and each is
        # fixed on one domain.
        assert result.canonical == 2
        assert result.fixed == 2
        assert not result.minimum_below_canonical

    def test_census_regions_sum(self, small_ab):
        r = census(small_ab)
        assert r.fixed_not_canonical == r.fixed - r.canonical_and_fixed
        assert r.canonical_not_fixed == r.canonical - r.canonical_and_fixed
