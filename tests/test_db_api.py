"""DB-API contract tests for the embedded facade (repro.db).

Covers module globals, connection/cursor lifecycle, fetch semantics,
rowcount, parameter styles, prepared statements (plan caching), scripts,
executemany batching, transactions, and closed-handle errors.
"""

import pytest

import repro
import repro.db as db
from repro.core.values import ValueSet
from repro.errors import ReproError
from repro.planner import plan_invocations
from repro.relational.relation import Relation
from repro.workloads import paper_examples as pe


@pytest.fixture
def conn():
    connection = db.connect()
    connection.database.register(
        "Enrollment", pe.FIG1_R1, order=["Course", "Club", "Student"]
    )
    return connection


@pytest.fixture
def flat_conn():
    connection = db.connect()
    connection.database.register(
        "R",
        Relation.from_rows(
            ["A", "B"],
            [("a1", "b1"), ("a1", "b2"), ("a2", "b1"), ("a3", "b3")],
        ),
        mode="1nf",
    )
    return connection


class TestModuleGlobals:
    def test_dbapi_globals(self):
        assert db.apilevel == "2.0"
        assert db.threadsafety == 1
        assert db.paramstyle == "qmark"

    def test_exception_hierarchy(self):
        assert issubclass(db.Error, ReproError)
        assert issubclass(db.InterfaceError, db.Error)
        assert issubclass(db.ProgrammingError, db.DatabaseError)
        assert issubclass(db.DatabaseError, db.Error)

    def test_facade_exported_from_repro(self):
        assert repro.connect is db.connect
        assert repro.Database is db.Database


class TestConnect:
    def test_connect_fresh_database(self):
        conn = db.connect()
        assert conn.catalog.names() == []

    def test_connect_existing_database(self, conn):
        other = db.connect(conn.database)
        assert other.catalog is conn.catalog

    def test_connect_adopts_catalog(self):
        from repro.query import Catalog

        catalog = Catalog()
        conn = db.connect(catalog)
        assert conn.catalog is catalog


class TestCursorLifecycle:
    def test_execute_returns_cursor(self, conn):
        cur = conn.execute("Enrollment")
        assert cur is not None
        assert cur.connection is conn

    def test_fetch_before_execute_raises(self, conn):
        with pytest.raises(db.InterfaceError, match="no result set"):
            conn.cursor().fetchone()

    def test_closed_cursor_raises(self, conn):
        cur = conn.execute("Enrollment")
        cur.close()
        with pytest.raises(db.InterfaceError, match="cursor is closed"):
            cur.fetchone()
        with pytest.raises(db.InterfaceError, match="cursor is closed"):
            cur.execute("Enrollment")
        cur.close()  # idempotent

    def test_closed_connection_raises(self, conn):
        cur = conn.execute("Enrollment")
        conn.close()
        with pytest.raises(db.InterfaceError, match="connection is closed"):
            conn.cursor()
        with pytest.raises(db.InterfaceError, match="connection is closed"):
            conn.execute("Enrollment")
        with pytest.raises(db.InterfaceError, match="connection is closed"):
            cur.fetchone()
        conn.close()  # idempotent

    def test_close_rolls_back_open_transaction(self, conn):
        conn.execute("BEGIN")
        conn.execute(
            "INSERT INTO Enrollment VALUES ('s9', 'c9', 'b9')"
        )
        conn.close()
        fresh = db.connect(conn.database)
        rows = fresh.execute(
            "SELECT Enrollment WHERE Student CONTAINS 's9'"
        ).fetchall()
        assert rows == []

    def test_cursor_context_manager_closes(self, conn):
        with conn.cursor() as cur:
            cur.execute("Enrollment")
        with pytest.raises(db.InterfaceError):
            cur.fetchone()


class TestFetchSemantics:
    def test_description_names_columns(self, conn):
        cur = conn.execute("PROJECT Enrollment ON (Student, Club)")
        assert [d[0] for d in cur.description] == ["Student", "Club"]
        assert all(len(d) == 7 for d in cur.description)

    def test_fetchone_then_none(self, flat_conn):
        cur = flat_conn.execute("SELECT R WHERE A CONTAINS 'a3'")
        row = cur.fetchone()
        assert row == (ValueSet(["a3"]), ValueSet(["b3"]))
        assert cur.fetchone() is None
        assert cur.fetchone() is None

    def test_fetchmany_respects_size_and_arraysize(self, flat_conn):
        cur = flat_conn.execute("R")
        first = cur.fetchmany(3)
        assert len(first) == 3
        cur2 = flat_conn.execute("R")
        assert len(cur2.fetchmany()) == cur2.arraysize == 1
        cur2.arraysize = 10
        assert len(cur2.fetchmany()) == 3  # remaining rows

    def test_fetchall_matches_evaluate(self, conn):
        from repro.query import run

        cur = conn.execute("SELECT Enrollment WHERE Club CONTAINS 'b1'")
        rows = set(cur.fetchall())
        reference = run(
            "SELECT Enrollment WHERE Club CONTAINS 'b1'", conn.catalog
        )
        assert rows == {tuple(t.components) for t in reference}

    def test_iteration_protocol(self, flat_conn):
        rows = [row for row in flat_conn.execute("R")]
        assert len(rows) == 4

    def test_streamed_rows_deduplicate(self, flat_conn):
        # PROJECT can emit cross-batch duplicates in the raw stream;
        # the cursor must present set semantics.
        cur = flat_conn.execute("PROJECT R ON (B)")
        rows = cur.fetchall()
        assert len(rows) == len(set(rows)) == 3

    def test_result_relation_bridges_to_library(self, conn):
        cur = conn.execute("Enrollment")
        relation = cur.result_relation()
        assert relation == conn.catalog.get("Enrollment")
        assert "Student" in cur.table()

    def test_explain_returns_one_text_row(self, conn):
        cur = conn.execute("EXPLAIN Enrollment")
        row = cur.fetchone()
        assert row is not None and "QUERY PLAN" in row[0]
        assert cur.fetchone() is None
        assert cur.description is None


class TestRowcount:
    def test_query_rowcount_is_minus_one(self, conn):
        assert conn.execute("Enrollment").rowcount == -1

    def test_insert_rowcount(self, conn):
        cur = conn.execute(
            "INSERT INTO Enrollment VALUES ('s9', 'c1', 'b1')"
        )
        assert cur.rowcount == 1

    def test_duplicate_insert_rowcount_zero(self, conn):
        conn.execute("INSERT INTO Enrollment VALUES ('s9', 'c1', 'b1')")
        cur = conn.execute(
            "INSERT INTO Enrollment VALUES ('s9', 'c1', 'b1')"
        )
        assert cur.rowcount == 0

    def test_delete_absent_is_integrity_error(self, conn):
        # engine errors are translated onto the PEP 249 hierarchy at
        # the facade boundary, so `except db.Error` catches them
        with pytest.raises(db.IntegrityError):
            conn.execute("DELETE FROM Enrollment VALUES ('z', 'z', 'z')")
        try:
            conn.execute("DELETE FROM Enrollment VALUES ('z', 'z', 'z')")
        except db.Error:
            pass

    def test_delete_rowcount(self, conn):
        cur = conn.execute(
            "DELETE FROM Enrollment VALUES ('s1', 'c1', 'b1')"
        )
        assert cur.rowcount == 1


class TestParameters:
    def test_positional_parameters(self, conn):
        cur = conn.execute(
            "SELECT Enrollment WHERE Club CONTAINS ?", ["b1"]
        )
        literal = conn.execute(
            "SELECT Enrollment WHERE Club CONTAINS 'b1'"
        )
        assert set(cur.fetchall()) == set(literal.fetchall())

    def test_named_parameters(self, conn):
        cur = conn.execute(
            "SELECT Enrollment WHERE Student CONTAINS :who",
            {"who": "s1"},
        )
        assert cur.fetchall()

    def test_wrong_parameter_count_is_programming_error(self, conn):
        with pytest.raises(db.ProgrammingError):
            conn.execute(
                "SELECT Enrollment WHERE Club CONTAINS ?", ["b1", "b2"]
            )
        with pytest.raises(db.ProgrammingError):
            conn.execute("SELECT Enrollment WHERE Club CONTAINS ?")

    def test_dml_parameters(self, conn):
        cur = conn.execute(
            "INSERT INTO Enrollment VALUES (?, ?, ?)", ["s8", "c1", "b1"]
        )
        assert cur.rowcount == 1
        assert conn.execute(
            "SELECT Enrollment WHERE Student CONTAINS ?", ["s8"]
        ).fetchall()


class TestPreparedStatements:
    def test_prepare_plans_once_for_many_executions(self, conn):
        conn.execute("ANALYZE Enrollment")
        stmt = conn.prepare(
            "SELECT Enrollment WHERE Club CONTAINS ?"
        )
        before = plan_invocations()
        results = {
            club: stmt.execute([club]).fetchall()
            for club in ("b1", "b2", "b1", "b2")
        }
        assert plan_invocations() - before == 0
        assert results["b1"] != results["b2"]

    def test_prepared_results_match_literals(self, conn):
        stmt = conn.prepare(
            "SELECT Enrollment WHERE Student CONTAINS :who"
        )
        for who in ("s1", "s2", "s3"):
            got = set(stmt.execute({"who": who}).fetchall())
            want = set(
                conn.execute(
                    f"SELECT Enrollment WHERE Student CONTAINS '{who}'"
                ).fetchall()
            )
            assert got == want

    def test_parameters_metadata(self, conn):
        stmt = conn.prepare(
            "SELECT Enrollment WHERE Club CONTAINS ? AND Course CONTAINS ?"
        )
        assert len(stmt.parameters) == 2

    def test_dml_invalidates_cached_plans(self, conn):
        conn.execute("ANALYZE Enrollment")
        node_text = "SELECT Enrollment WHERE Club CONTAINS ?"
        stmt = conn.prepare(node_text)
        stmt.execute(["b1"]).fetchall()
        version_before = conn.catalog.stats_version
        conn.execute("INSERT INTO Enrollment VALUES ('z1', 'c1', 'b1')")
        assert conn.catalog.stats_version > version_before
        before = plan_invocations()
        rows = stmt.execute(["b1"]).fetchall()
        # replanned exactly once against the new statistics version
        assert plan_invocations() - before == 1
        assert any("z1" in str(row) for row in rows)

    def test_cache_hit_statistics(self, conn):
        stmt = conn.prepare("Enrollment")
        hits_before = conn.plan_cache.hits
        stmt.execute().fetchall()
        stmt.execute().fetchall()
        assert conn.plan_cache.hits >= hits_before + 2

    def test_interleaved_cursors_keep_their_own_bindings(self, conn):
        # Two cursors over the same cached plan shape, different
        # bindings, fetched interleaved: each must see its own rows.
        text = "SELECT Enrollment WHERE Club CONTAINS ?"
        c1 = conn.execute(text, ["b1"])
        c2 = conn.execute(text, ["b2"])
        rows1 = [c1.fetchone()]
        rows2 = c2.fetchall()
        rows1.extend(c1.fetchall())
        want1 = conn.execute(
            "SELECT Enrollment WHERE Club CONTAINS 'b1'"
        ).fetchall()
        want2 = conn.execute(
            "SELECT Enrollment WHERE Club CONTAINS 'b2'"
        ).fetchall()
        assert set(rows1) == set(want1)
        assert set(rows2) == set(want2)


class TestExecutemany:
    def test_insert_batch(self, conn):
        cur = conn.executemany(
            "INSERT INTO Enrollment VALUES (?, ?, ?)",
            [("s7", "c1", "b1"), ("s7", "c2", "b1"), ("s1", "c1", "b1")],
        )
        assert cur.rowcount == 2  # the third already existed
        assert conn.execute(
            "SELECT Enrollment WHERE Student CONTAINS 's7'"
        ).fetchall()

    def test_executemany_rejects_queries(self, conn):
        with pytest.raises(db.ProgrammingError, match="queries"):
            conn.executemany("Enrollment", [[]])

    def test_delete_loop(self, conn):
        cur = conn.executemany(
            "DELETE FROM Enrollment VALUES (?, ?, ?)",
            [("s1", "c1", "b1"), ("s1", "c2", "b1")],
        )
        assert cur.rowcount == 2


class TestExecutescript:
    def test_script_runs_statements_in_order(self, conn):
        cur = conn.executescript(
            "LET X = PROJECT Enrollment ON (Student, Club); "
            "LET Y = SELECT X WHERE Club CONTAINS 'b1'; Y"
        )
        assert cur.fetchall()
        assert "X" in conn.catalog
        assert "Y" in conn.catalog

    def test_script_with_parameters_rejected(self, conn):
        with pytest.raises(db.ProgrammingError):
            conn.executescript(
                "SELECT Enrollment WHERE Club CONTAINS ?;"
            )

    def test_script_parse_error_names_statement(self, conn):
        from repro.errors import ParseError

        with pytest.raises(ParseError, match="statement 2"):
            conn.executescript("Enrollment; SELECT WHERE; Enrollment")


class TestTransactions:
    def test_commit_keeps_changes(self, conn):
        conn.execute("BEGIN")
        conn.execute("INSERT INTO Enrollment VALUES ('s9', 'c9', 'b9')")
        conn.execute("COMMIT")
        assert conn.execute(
            "SELECT Enrollment WHERE Student CONTAINS 's9'"
        ).fetchall()

    def test_rollback_restores_relation(self, conn):
        before = conn.catalog.get("Enrollment")
        conn.execute("BEGIN")
        conn.execute("INSERT INTO Enrollment VALUES ('s9', 'c9', 'b9')")
        conn.execute("DELETE FROM Enrollment VALUES ('s1', 'c1', 'b1')")
        conn.execute("ROLLBACK")
        assert conn.catalog.get("Enrollment") == before

    def test_rollback_restores_let_binding(self, conn):
        conn.execute("LET X = PROJECT Enrollment ON (Student, Club)")
        bound = conn.catalog.get("X")
        conn.begin()
        conn.execute("LET X = SELECT X WHERE Club CONTAINS 'b1'")
        conn.execute("LET Fresh = Enrollment")
        conn.rollback()
        assert conn.catalog.get("X") == bound
        assert "Fresh" not in conn.catalog

    def test_nested_begin_rejected(self, conn):
        conn.execute("BEGIN")
        with pytest.raises(db.OperationalError, match="already in progress"):
            conn.execute("BEGIN")

    def test_commit_without_begin_rejected_in_language(self, conn):
        with pytest.raises(db.OperationalError, match="no transaction"):
            conn.execute("COMMIT")

    def test_connection_commit_rollback_are_noops_outside_txn(self, conn):
        conn.commit()
        conn.rollback()

    def test_context_manager_commits_on_success(self, conn):
        with conn:
            conn.execute("BEGIN")
            conn.execute(
                "INSERT INTO Enrollment VALUES ('s9', 'c9', 'b9')"
            )
        assert not conn.in_transaction
        assert conn.execute(
            "SELECT Enrollment WHERE Student CONTAINS 's9'"
        ).fetchall()

    def test_context_manager_rolls_back_on_error(self, conn):
        with pytest.raises(RuntimeError):
            with conn:
                conn.execute("BEGIN")
                conn.execute(
                    "INSERT INTO Enrollment VALUES ('s9', 'c9', 'b9')"
                )
                raise RuntimeError("boom")
        assert not conn.in_transaction
        assert not conn.execute(
            "SELECT Enrollment WHERE Student CONTAINS 's9'"
        ).fetchall()

    def test_other_connections_do_not_touch_foreign_transactions(self, conn):
        other = db.connect(conn.database)
        conn.execute("BEGIN")
        conn.execute("INSERT INTO Enrollment VALUES ('s9', 'c9', 'b9')")
        # A sibling session must not end a transaction it did not
        # open — its statements landed in the foreign transaction, so a
        # silent commit would promise durability it cannot deliver.
        with pytest.raises(db.OperationalError, match="another session"):
            other.commit()
        with pytest.raises(db.OperationalError, match="another session"):
            other.rollback()
        with pytest.raises(db.OperationalError, match="another session"):
            other.execute("COMMIT")
        with pytest.raises(db.OperationalError, match="another session"):
            other.execute("ROLLBACK")
        other.close()
        assert conn.in_transaction
        conn.execute("COMMIT")
        assert conn.execute(
            "SELECT Enrollment WHERE Student CONTAINS 's9'"
        ).fetchall()

    def test_executemany_rolls_back_as_a_unit(self, conn):
        before = conn.catalog.get("Enrollment")
        conn.execute("BEGIN")
        conn.executemany(
            "INSERT INTO Enrollment VALUES (?, ?, ?)",
            [("s7", "c1", "b1"), ("s8", "c2", "b2")],
        )
        conn.execute("ROLLBACK")
        assert conn.catalog.get("Enrollment") == before


class TestCatalogSetBugfix:
    def test_representable_rebind_diff_updates_store(self, conn):
        from repro import canonical_form

        conn.execute("ANALYZE Enrollment")
        catalog = conn.catalog
        store = catalog.store_if_open("Enrollment")
        assert store is not None
        # A rebind whose nesting IS the stored representation: the
        # canonical form (under the store's order) of a changed R*.
        changed = store.to_1nf().tuples - {
            next(iter(store.to_1nf().tuples))
        }
        target = canonical_form(
            type(store.to_1nf())(store.schema, changed), list(store.order)
        )
        catalog.set("Enrollment", target)
        # same store object, updated in place via the flat-tuple diff
        assert catalog.store_if_open("Enrollment") is store
        assert catalog.get("Enrollment") == target
        assert store.to_1nf().tuples == changed

    def test_structure_changing_rebind_preserves_structure(self, conn):
        conn.execute("ANALYZE Enrollment")
        store = conn.catalog.store_if_open("Enrollment")
        flattened_count = conn.catalog.get("Enrollment").flat_count
        conn.execute("LET Enrollment = FLATTEN Enrollment")
        # the bound structure wins: all-singleton, one tuple per flat
        bound = conn.catalog.get("Enrollment")
        assert bound.cardinality == flattened_count
        assert all(t.is_all_singleton() for t in bound)
        # which means the canonical store had to be replaced
        assert conn.catalog.store_if_open("Enrollment") is not store

    def test_incompatible_rebind_replaces_store(self, conn):
        conn.execute("ANALYZE Enrollment")
        store = conn.catalog.store_if_open("Enrollment")
        conn.execute(
            "LET Enrollment = PROJECT Enrollment ON (Student, Club)"
        )
        assert conn.catalog.store_if_open("Enrollment") is not store

    def test_noop_rebind_does_not_touch_pages(self, conn):
        conn.execute("ANALYZE Enrollment")
        store = conn.catalog.store_for("Enrollment")
        writes = store.heap.stats.page_writes
        conn.execute("LET Enrollment = Enrollment")
        assert conn.catalog.store_if_open("Enrollment") is store
        assert store.heap.stats.page_writes == writes
