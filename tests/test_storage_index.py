"""Tests for repro.storage.index."""

from repro.storage.index import AtomIndex


class TestAtomIndex:
    def test_add_and_lookup(self):
        idx = AtomIndex(["A", "B"])
        idx.add("A", "a1", (0, 0))
        assert idx.lookup("A", "a1") == {(0, 0)}

    def test_lookup_missing_is_empty(self):
        idx = AtomIndex(["A"])
        assert idx.lookup("A", "zz") == frozenset()

    def test_add_component(self):
        idx = AtomIndex(["A"])
        idx.add_component("A", ["a1", "a2"], (1, 0))
        assert idx.lookup("A", "a2") == {(1, 0)}

    def test_lookup_all_intersects(self):
        idx = AtomIndex(["A", "B"])
        idx.add("A", "a", (0, 0))
        idx.add("B", "b", (0, 0))
        idx.add("A", "a", (0, 1))
        assert idx.lookup_all([("A", "a"), ("B", "b")]) == {(0, 0)}

    def test_lookup_all_short_circuits_empty(self):
        idx = AtomIndex(["A", "B"])
        idx.add("A", "a", (0, 0))
        assert idx.lookup_all([("A", "a"), ("B", "zz")]) == frozenset()

    def test_remove(self):
        idx = AtomIndex(["A"])
        idx.add("A", "a", (0, 0))
        idx.remove("A", "a", (0, 0))
        assert idx.lookup("A", "a") == frozenset()

    def test_remove_component(self):
        idx = AtomIndex(["A"])
        idx.add_component("A", ["a1", "a2"], (0, 0))
        idx.remove_component("A", ["a1", "a2"], (0, 0))
        assert idx.entry_count() == 0

    def test_entry_and_key_counts(self):
        idx = AtomIndex(["A", "B"])
        idx.add("A", "a", (0, 0))
        idx.add("A", "a", (0, 1))
        idx.add("B", "b", (0, 0))
        assert idx.entry_count() == 3
        assert idx.distinct_keys() == 2

    def test_lookup_counter(self):
        idx = AtomIndex(["A"])
        idx.lookup("A", "x")
        idx.lookup("A", "y")
        assert idx.lookups == 2
