"""Tests for repro.storage.index."""

import pytest

from repro.storage.index import AtomIndex


class TestAtomIndex:
    def test_add_and_lookup(self):
        idx = AtomIndex(["A", "B"])
        idx.add("A", "a1", (0, 0))
        assert idx.lookup("A", "a1") == {(0, 0)}

    def test_lookup_missing_is_empty(self):
        idx = AtomIndex(["A"])
        assert idx.lookup("A", "zz") == frozenset()

    def test_add_component(self):
        idx = AtomIndex(["A"])
        idx.add_component("A", ["a1", "a2"], (1, 0))
        assert idx.lookup("A", "a2") == {(1, 0)}

    def test_lookup_all_intersects(self):
        idx = AtomIndex(["A", "B"])
        idx.add("A", "a", (0, 0))
        idx.add("B", "b", (0, 0))
        idx.add("A", "a", (0, 1))
        assert idx.lookup_all([("A", "a"), ("B", "b")]) == {(0, 0)}

    def test_lookup_all_short_circuits_empty(self):
        idx = AtomIndex(["A", "B"])
        idx.add("A", "a", (0, 0))
        assert idx.lookup_all([("A", "a"), ("B", "zz")]) == frozenset()

    def test_remove(self):
        idx = AtomIndex(["A"])
        idx.add("A", "a", (0, 0))
        idx.remove("A", "a", (0, 0))
        assert idx.lookup("A", "a") == frozenset()

    def test_remove_component(self):
        idx = AtomIndex(["A"])
        idx.add_component("A", ["a1", "a2"], (0, 0))
        idx.remove_component("A", ["a1", "a2"], (0, 0))
        assert idx.entry_count() == 0

    def test_entry_and_key_counts(self):
        idx = AtomIndex(["A", "B"])
        idx.add("A", "a", (0, 0))
        idx.add("A", "a", (0, 1))
        idx.add("B", "b", (0, 0))
        assert idx.entry_count() == 3
        assert idx.distinct_keys() == 2

    def test_lookup_counter(self):
        idx = AtomIndex(["A"])
        idx.lookup("A", "x")
        idx.lookup("A", "y")
        assert idx.lookups == 2


class TestRangeIndex:
    def _index(self):
        from repro.storage.index import RangeIndex

        idx = RangeIndex(["A", "B"])
        idx.add("A", 10, (0, 0))
        idx.add("A", 20, (0, 1))
        idx.add("A", 30, (1, 0))
        idx.add("A", 20, (1, 1))
        return idx

    def test_window_lookup(self):
        idx = self._index()
        assert idx.range_lookup("A", 15, 25) == {(0, 1), (1, 1)}
        assert idx.range_lookup("A", low=20) == {(0, 1), (1, 0), (1, 1)}
        assert idx.range_lookup("A", high=10) == {(0, 0)}

    def test_open_bounds_cover_everything(self):
        idx = self._index()
        assert len(idx.range_lookup("A")) == 4

    def test_inclusivity(self):
        idx = self._index()
        assert idx.range_lookup("A", 20, 30, low_inclusive=False) == {
            (1, 0)
        }
        assert idx.range_lookup("A", 10, 20, high_inclusive=False) == {
            (0, 0)
        }

    def test_empty_window(self):
        idx = self._index()
        assert idx.range_lookup("A", 21, 29) == frozenset()
        assert idx.range_lookup("B", 0, 100) == frozenset()

    def test_remove_shrinks_window(self):
        idx = self._index()
        idx.remove("A", 20, (0, 1))
        assert idx.range_lookup("A", 15, 25) == {(1, 1)}
        idx.remove("A", 20, (1, 1))
        assert idx.range_lookup("A", 15, 25) == frozenset()

    def test_run_rebuilt_after_mutation(self):
        idx = self._index()
        assert idx.range_lookup("A", high=15) == {(0, 0)}
        idx.add("A", 5, (2, 0))
        assert idx.range_lookup("A", high=15) == {(0, 0), (2, 0)}

    def test_lookup_counter(self):
        idx = self._index()
        idx.range_lookup("A", 0, 100)
        idx.range_lookup("A", 0, 1)
        assert idx.lookups == 2

    def test_key_fraction(self):
        idx = self._index()
        assert idx.key_fraction("A", 15, 25) == pytest.approx(1 / 3)
        assert idx.key_fraction("A", None, None) == 1.0
        assert idx.key_fraction("B", 0, 1) is None

    def test_key_fraction_not_billed_as_lookup(self):
        idx = self._index()
        idx.key_fraction("A", 0, 100)
        assert idx.lookups == 0

    def test_remap_rids(self):
        idx = self._index()
        idx.remap_rids({(1, 0): (0, 2), (1, 1): (0, 3)})
        assert idx.range_lookup("A", 25, 35) == {(0, 2)}
        assert idx.range_lookup("A", 15, 25) == {(0, 1), (0, 3)}

    def test_numeric_types_keep_their_sort_positions(self):
        # 1 / 1.0 / True hash alike in Python; the index must keep them
        # apart because the library total order sorts bools *before*
        # numbers — collapsed buckets would make window probes miss.
        from repro.storage.index import RangeIndex

        idx = RangeIndex(["A"])
        idx.add("A", True, (0, 0))
        idx.add("A", 0, (0, 1))
        idx.add("A", 1, (0, 2))
        assert idx.range_lookup("A", low=1) == {(0, 2)}
        assert idx.range_lookup("A", high=0) == {(0, 0), (0, 1)}

    def test_mixed_types_sort_without_error(self):
        from repro.storage.index import RangeIndex

        idx = RangeIndex(["A"])
        idx.add("A", "x", (0, 0))
        idx.add("A", 7, (0, 1))
        idx.add("A", None, (0, 2))
        idx.add("A", 7.0, (0, 3))
        # None < numbers < strings under the library order; 7 and 7.0
        # share a sort position but keep distinct buckets.
        assert idx.range_lookup("A", high=0) == {(0, 2)}
        assert idx.range_lookup("A", 5, 10) == {(0, 1), (0, 3)}
        assert idx.range_lookup("A", low="a") == {(0, 0)}

    def test_entry_and_key_counts(self):
        idx = self._index()
        assert idx.entry_count() == 4
        assert idx.distinct_keys() == 3
