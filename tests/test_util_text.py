"""Tests for repro.util.text."""

import pytest

from repro.util.text import format_kv, format_table


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["A", "B"], [["a1", "b1"]])
        lines = out.splitlines()
        assert lines[0].startswith("+")
        assert "| A " in lines[1]
        assert "| a1" in lines[3]

    def test_column_width_tracks_widest_cell(self):
        out = format_table(["A"], [["short"], ["a-much-longer-cell"]])
        width = len(out.splitlines()[0])
        for line in out.splitlines():
            assert len(line) == width

    def test_title_prepended(self):
        out = format_table(["A"], [["x"]], title="R1")
        assert out.splitlines()[0] == "R1"

    def test_row_arity_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["A", "B"], [["only-one"]])

    def test_none_renders_empty(self):
        out = format_table(["A"], [[None]])
        assert "None" not in out

    def test_float_renders_compactly(self):
        out = format_table(["A"], [[1.5]])
        assert "1.5" in out

    def test_empty_rows_renders_header_only(self):
        out = format_table(["A", "B"], [])
        assert out.count("\n") == 3  # rule, header, rule, rule


class TestFormatKv:
    def test_alignment(self):
        out = format_kv([("a", 1), ("long-key", 2)])
        lines = out.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_empty(self):
        assert format_kv([]) == ""
