"""Property tests for the columnar execution core.

Three oracles, one randomized query space (now including inequality and
BETWEEN window predicates):

- the *columnar stream* (collecting ``iter_batches`` of a planned
  physical tree, which decodes the native dictionary-encoded column
  batches at the boundary),
- the materializing executor (:func:`repro.query.evaluate`), and
- the naive AST interpreter (:func:`repro.query.evaluate_naive`)

must agree exactly, whatever the storage state (in-memory MemoryScan
plans vs analyzed paged stores with Atom/Range indexes, either storage
mode).

Separately, the store's column-wise partial decoder must agree with the
full row decoder on every attribute subset: scanning with ``needed``
set to any subset projects the same multiset of components the full
scan would.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nfr_relation import NFRelation
from repro.planner import plan
from repro.query import Catalog, evaluate, evaluate_naive, run
from repro.query import ast
from repro.workloads.synthetic import random_relation, skewed_relation

ATTRS = ["A", "B", "C"]
DOMAIN = 5

_attr = st.sampled_from(ATTRS)
_value = st.one_of(
    *[
        st.sampled_from([f"{a.lower()}{i}" for i in range(DOMAIN + 1)])
        for a in ATTRS
    ]
)


def _conditions():
    contains = st.builds(ast.Contains, _attr, _value)
    singleton = st.builds(ast.SingletonEquals, _attr, _value)
    component = st.builds(
        lambda a, vs: ast.ComponentEquals(a, tuple(vs)),
        _attr,
        st.lists(_value, min_size=1, max_size=2),
    )
    comparison = st.builds(
        ast.Comparison,
        _attr,
        st.sampled_from(["<", "<=", ">", ">="]),
        _value,
    )
    between = st.builds(
        lambda a, lo, hi: ast.Between(a, min(lo, hi), max(lo, hi)),
        _attr,
        _value,
        _value,
    )
    atom = st.one_of(contains, singleton, component, comparison, between)
    return st.one_of(atom, st.builds(ast.And, atom, atom))


def _expressions() -> st.SearchStrategy:
    base = st.just(ast.Name("R"))

    def extend(expr):
        return st.one_of(
            st.just(expr),
            st.builds(ast.Select, st.just(expr), _conditions()),
            st.builds(
                lambda e, attrs: ast.Nest(e, tuple(attrs)),
                st.just(expr),
                st.lists(_attr, min_size=1, max_size=2, unique=True),
            ),
            st.builds(ast.Unnest, st.just(expr), _attr),
            st.builds(ast.Flatten, st.just(expr)),
            st.builds(ast.Join, st.just(expr), base),
        )

    unary = st.recursive(
        base, lambda inner: inner.flatmap(extend), max_leaves=4
    )
    projected = st.builds(
        lambda e, attrs: ast.Project(e, tuple(attrs)),
        unary,
        st.lists(_attr, min_size=1, max_size=3, unique=True),
    )
    return st.one_of(unary, projected)


def _relation(kind: int, seed: int):
    if kind == 0:
        return random_relation(ATTRS, 20, domain_size=DOMAIN, seed=seed)
    return skewed_relation(ATTRS, 16, domain_size=DOMAIN, seed=seed)


def _stream_collect(expr, catalog) -> NFRelation:
    physical = plan(expr, catalog)
    out = []
    for batch in physical.root.iter_batches():
        out.extend(batch)
    return NFRelation(physical.root.output_schema(), out)


class TestColumnarStreamEqualsNaive:
    @given(
        kind=st.integers(min_value=0, max_value=1),
        seed=st.integers(min_value=0, max_value=40),
        mode=st.sampled_from(["nfr", "1nf"]),
        open_store=st.booleans(),
        expr=_expressions(),
    )
    @settings(max_examples=80, deadline=None)
    def test_three_way_equivalence(
        self, kind, seed, mode, open_store, expr
    ):
        catalog = Catalog()
        catalog.register("R", _relation(kind, seed), mode=mode)
        if open_store:
            run("ANALYZE R", catalog)
        naive = evaluate_naive(expr, catalog)
        executed = evaluate(expr, catalog)
        streamed = _stream_collect(expr, catalog)
        assert executed == naive
        assert streamed == naive

    @given(
        seed=st.integers(min_value=0, max_value=40),
        op=st.sampled_from(["<", "<=", ">", ">="]),
        value=_value,
        forced=st.sampled_from([None, True, False]),
    )
    @settings(max_examples=40, deadline=None)
    def test_window_predicates_across_access_paths(
        self, seed, op, value, forced
    ):
        """The same window query through RangeScan / HeapScan /
        whatever the model picks — identical results."""
        catalog = Catalog()
        catalog.register(
            "R",
            random_relation(ATTRS, 30, domain_size=DOMAIN, seed=seed),
            mode="1nf",
        )
        run("ANALYZE R", catalog)
        expr = ast.Select(ast.Name("R"), ast.Comparison("A", op, value))
        naive = evaluate_naive(expr, catalog)
        assert plan(expr, catalog, use_index=forced).execute() == naive


class TestPartialDecodeEqualsFull:
    @given(
        seed=st.integers(min_value=0, max_value=40),
        mode=st.sampled_from(["nfr", "1nf"]),
        subset=st.lists(_attr, min_size=1, max_size=3, unique=True),
    )
    @settings(max_examples=60, deadline=None)
    def test_column_subset_matches_full_decode(self, seed, mode, subset):
        catalog = Catalog()
        catalog.register(
            "R",
            random_relation(ATTRS, 25, domain_size=DOMAIN, seed=seed),
            mode=mode,
        )
        store = catalog.store_for("R")
        ordered = [n for n in store.schema.names if n in subset]
        full = [
            tuple(t[n] for n in ordered) for t in store.scan_tuples()[0]
        ]
        partial = [
            tuple(t[n] for n in ordered)
            for t in store.stream_scan(needed=ordered)
        ]
        assert sorted(partial, key=repr) == sorted(full, key=repr)
        columnar = []
        for batch in store.stream_scan_columns(needed=ordered):
            for t in batch.to_rows(store.schema.project(ordered)):
                columnar.append(tuple(t[n] for n in ordered))
        assert sorted(columnar, key=repr) == sorted(full, key=repr)

    @given(
        seed=st.integers(min_value=0, max_value=40),
        subset=st.lists(_attr, min_size=1, max_size=2, unique=True),
    )
    @settings(max_examples=30, deadline=None)
    def test_partial_decode_is_cheaper(self, seed, subset):
        catalog = Catalog()
        catalog.register(
            "R",
            random_relation(ATTRS, 25, domain_size=DOMAIN, seed=seed),
            mode="1nf",
        )
        store = catalog.store_for("R")
        before = store.stats_window()
        for _ in store.stream_scan_columns(needed=subset):
            pass
        partial_bytes = store.stats_window()[3] - before[3]
        before = store.stats_window()
        for _ in store.stream_scan_columns():
            pass
        full_bytes = store.stats_window()[3] - before[3]
        assert 0 < partial_bytes
        if len(subset) < len(ATTRS):
            assert partial_bytes < full_bytes
