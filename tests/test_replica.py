"""WAL-shipped read replicas.

The replication contract: a :class:`~repro.storage.replica.Replica`
that has polled to CSN ``c`` serves exactly the primary's committed
state as of ``c`` — under concurrent writers, across checkpoints
(which truncate the WAL and force a reseed from the data-file header),
for sharded and unsharded primaries alike — and refuses every write.
"""

import os
import threading
import time

import pytest

import repro.db
from repro.core.nfr_relation import NFRelation
from repro.relational.schema import RelationSchema


def _srt(rows):
    return sorted(rows, key=repr)


def _fresh_primary(tmp_path, shards=None):
    path = os.path.join(str(tmp_path), "primary.db")
    conn = repro.db.connect(path, shards=shards)
    conn.database.register(
        "R", NFRelation(RelationSchema(["A", "B"]), ()), order=["A", "B"]
    )
    return path, conn


class TestReplicaTracksPrimary:
    @pytest.mark.parametrize("shards", [None, 3])
    def test_snapshot_equality_across_polls(self, tmp_path, shards):
        path, conn = _fresh_primary(tmp_path, shards=shards)
        sess = conn.database.session()
        for i in range(12):
            sess.execute("INSERT INTO R VALUES (?, ?)", [f"a{i}", f"b{i % 3}"])
        rep = repro.db.replica(path)
        try:
            # quiescent primary: replica CSN equals the primary's, and
            # the snapshots are identical
            assert rep.applied_csn == conn.database.engine.committed_csn
            assert _srt(rep.execute("R").fetchall()) == _srt(
                sess.execute("R").fetchall()
            )
            for round_no in range(3):
                for i in range(5):
                    sess.execute(
                        "INSERT INTO R VALUES (?, ?)",
                        [f"r{round_no}x{i}", f"b{i % 3}"],
                    )
                sess.execute(
                    "DELETE FROM R VALUES (?, ?)", [f"r{round_no}x0", "b0"]
                )
                assert rep.poll() > 0
                assert rep.applied_csn == conn.database.engine.committed_csn
                assert rep.lag_csn == 0
                assert _srt(rep.execute("R").fetchall()) == _srt(
                    sess.execute("R").fetchall()
                )
                assert _srt(rep.execute("FLATTEN R").fetchall()) == _srt(
                    sess.execute("FLATTEN R").fetchall()
                )
        finally:
            rep.close()
            sess.close()
            conn.close()

    def test_concurrent_writer_snapshots_stay_consistent(self, tmp_path):
        """While a writer streams commits, every polled replica state
        is the primary's state at the replica's applied CSN: each
        commit inserts exactly one unique flat row, so the flattened
        cardinality at CSN ``c`` must be ``c`` — and lag is bounded by
        what the writer managed to commit."""
        path, conn = _fresh_primary(tmp_path)
        sess = conn.database.session()
        total = 60
        sess.execute("INSERT INTO R VALUES (?, ?)", ["seed", "b0"])
        rep = repro.db.replica(path)

        def writer():
            s2 = conn.database.session()
            for i in range(total - 1):
                s2.execute(
                    "INSERT INTO R VALUES (?, ?)", [f"w{i}", f"b{i % 7}"]
                )
                time.sleep(0.001)
            s2.close()

        try:
            t = threading.Thread(target=writer)
            t.start()
            while t.is_alive():
                rep.poll()
                csn = rep.applied_csn
                rows = rep.execute("FLATTEN R").fetchall()
                assert len(rows) == csn, (len(rows), csn)
                time.sleep(0.002)
            t.join()
            rep.poll()
            assert rep.applied_csn == total
            assert rep.lag_csn == 0
            assert _srt(rep.execute("R").fetchall()) == _srt(
                sess.execute("R").fetchall()
            )
        finally:
            rep.close()
            sess.close()
            conn.close()

    @pytest.mark.parametrize("shards", [None, 3])
    def test_checkpoint_reseed(self, tmp_path, shards):
        path, conn = _fresh_primary(tmp_path, shards=shards)
        sess = conn.database.session()
        for i in range(8):
            sess.execute("INSERT INTO R VALUES (?, ?)", [f"a{i}", "b0"])
        rep = repro.db.replica(path)
        try:
            before = rep.applied_csn
            conn.database.checkpoint()  # truncates every WAL
            for i in range(8, 14):
                sess.execute("INSERT INTO R VALUES (?, ?)", [f"a{i}", "b1"])
            rep.poll()
            assert rep.reseeds >= 1
            assert rep.applied_csn >= before  # CSN never regresses
            assert rep.applied_csn == conn.database.engine.committed_csn
            assert _srt(rep.execute("R").fetchall()) == _srt(
                sess.execute("R").fetchall()
            )
        finally:
            rep.close()
            sess.close()
            conn.close()

    def test_cross_shard_transaction_ships_atomically(self, tmp_path):
        """A multi-statement transaction spanning shards is either
        entirely visible on the replica or not at all — the epoch gate
        holds side-partition commits until partition 0 decides."""
        path, conn = _fresh_primary(tmp_path, shards=4)
        sess = conn.database.session()
        sess.execute("INSERT INTO R VALUES (?, ?)", ["seed", "b0"])
        rep = repro.db.replica(path)
        try:
            baseline = len(rep.execute("FLATTEN R").fetchall())
            sess.begin()
            for i in range(10):  # spread over all four shards
                sess.execute(
                    "INSERT INTO R VALUES (?, ?)", [f"t{i}", f"b{i % 4}"]
                )
            sess.commit()
            rep.poll()
            rows = len(rep.execute("FLATTEN R").fetchall())
            assert rows in (baseline, baseline + 10)
            assert rows == baseline + 10  # the commit had landed
        finally:
            rep.close()
            sess.close()
            conn.close()


class TestReplicaIsReadOnly:
    def test_writes_are_refused_everywhere(self, tmp_path):
        path, conn = _fresh_primary(tmp_path)
        conn.execute("INSERT INTO R VALUES (?, ?)", ["a", "b"])
        rep = repro.db.replica(path)
        try:
            for stmt in [
                "INSERT INTO R VALUES ('x', 'y')",
                "DELETE FROM R VALUES ('a', 'b')",
                "LET S = R",
                "ANALYZE R",
            ]:
                with pytest.raises(Exception):
                    rep.execute(stmt)
            # and the primary never saw any of it
            assert len(conn.execute("FLATTEN R").fetchall()) == 1
            assert len(rep.execute("FLATTEN R").fetchall()) == 1
        finally:
            rep.close()
            conn.close()

    def test_replica_never_takes_the_primary_lock(self, tmp_path):
        path, conn = _fresh_primary(tmp_path)
        conn.execute("INSERT INTO R VALUES (?, ?)", ["a", "b"])
        rep = repro.db.replica(path)  # works while the primary is open
        try:
            rep2 = repro.db.replica(path)  # several replicas coexist
            try:
                assert len(rep2.execute("FLATTEN R").fetchall()) == 1
            finally:
                rep2.close()
        finally:
            rep.close()
            conn.close()


class TestReplicaLifecycle:
    def test_background_poller(self, tmp_path):
        path, conn = _fresh_primary(tmp_path)
        sess = conn.database.session()
        sess.execute("INSERT INTO R VALUES (?, ?)", ["a0", "b0"])
        rep = repro.db.replica(path, poll_interval=0.01)
        try:
            sess.execute("INSERT INTO R VALUES (?, ?)", ["a1", "b1"])
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if rep.applied_csn >= conn.database.engine.committed_csn:
                    break
                time.sleep(0.01)
            assert rep.applied_csn == conn.database.engine.committed_csn
        finally:
            rep.close()
            sess.close()
            conn.close()

    def test_metrics_and_close(self, tmp_path):
        path, conn = _fresh_primary(tmp_path)
        sess = conn.database.session()
        sess.execute("INSERT INTO R VALUES (?, ?)", ["a0", "b0"])
        rep = repro.db.replica(path)
        metrics = rep.database.metrics()
        assert metrics["repro_replica_applied_csn"]["values"][""] == 1.0
        assert "repro_replica_lag_csn" in metrics
        rep.close()
        rep.close()  # idempotent
        with pytest.raises(Exception):
            rep.execute("R")
        sess.close()
        conn.close()

    def test_replica_of_missing_database_raises(self, tmp_path):
        with pytest.raises(Exception):
            repro.db.replica(os.path.join(str(tmp_path), "absent.db"))
