"""Tests for repro.core.nest (Definition 4)."""

import random

import pytest

from repro.core.nest import (
    is_nested_on,
    nest,
    nest_by_compositions,
    nest_sequence,
    unnest,
    unnest_fully,
)
from repro.core.nfr_relation import NFRelation
from repro.errors import NFRError
from repro.relational.relation import Relation
from repro.util.counters import OperationCounter


@pytest.fixture
def lifted(small_ab):
    return NFRelation.from_1nf(small_ab)


class TestNest:
    def test_nest_groups_by_other_attributes(self, lifted):
        out = nest(lifted, "A")
        assert out.cardinality == 2  # one tuple per b value
        assert {t["B"].only for t in out} == {"b1", "b2"}

    def test_nest_preserves_r_star(self, lifted, small_ab):
        assert nest(lifted, "A").to_1nf() == small_ab

    def test_nest_is_idempotent(self, lifted):
        once = nest(lifted, "A")
        assert nest(once, "A") == once

    def test_nest_result_is_nested(self, lifted):
        assert is_nested_on(nest(lifted, "A"), "A")
        assert not is_nested_on(lifted, "A")

    def test_nest_counts_merges(self, lifted):
        c = OperationCounter()
        nest(lifted, "A", counter=c)
        # 4 tuples -> 2 tuples: 2 compositions
        assert c.compositions == 2

    def test_nest_unknown_attribute_raises(self, lifted):
        with pytest.raises(Exception):
            nest(lifted, "Z")

    def test_nest_on_empty_relation(self, ab_schema):
        empty = NFRelation(ab_schema)
        assert nest(empty, "A").cardinality == 0


class TestNestByCompositions:
    """Theorem 2's subject: the literal process equals the fixpoint."""

    def test_matches_grouped_nest(self, lifted):
        expected = nest(lifted, "A")
        for seed in range(5):
            got = nest_by_compositions(lifted, "A", rng=random.Random(seed))
            assert got == expected

    def test_counts_same_compositions(self, lifted):
        c1, c2 = OperationCounter(), OperationCounter()
        nest(lifted, "A", counter=c1)
        nest_by_compositions(lifted, "A", counter=c2)
        assert c1.compositions == c2.compositions


class TestNestSequence:
    def test_left_to_right_order(self, product_abc):
        lifted = NFRelation.from_1nf(product_abc)
        out = nest_sequence(lifted, ["A", "B", "C"])
        assert out.cardinality == 1  # full product composes to one tuple

    def test_order_matters_for_result(self):
        from repro.workloads.paper_examples import EXAMPLE3_R5

        lifted = NFRelation.from_1nf(EXAMPLE3_R5)
        bca = nest_sequence(lifted, ["B", "C", "A"])
        abc = nest_sequence(lifted, ["A", "B", "C"])
        assert bca != abc


class TestUnnest:
    def test_unnest_splits_components(self, lifted):
        nested = nest(lifted, "A")
        back = unnest(nested, "A")
        assert back == lifted

    def test_unnest_counts_decompositions(self, lifted):
        nested = nest(lifted, "A")
        c = OperationCounter()
        unnest(nested, "A", counter=c)
        assert c.decompositions == 2  # reverse of the 2 compositions

    def test_unnest_fully_equals_lifted_r_star(self, product_abc):
        lifted = NFRelation.from_1nf(product_abc)
        nested = nest_sequence(lifted, ["A", "B", "C"])
        assert unnest_fully(nested) == lifted

    def test_nest_unnest_roundtrip_arbitrary(self):
        rel = Relation.from_rows(
            ["A", "B", "C"],
            [("a1", "b1", "c1"), ("a1", "b2", "c1"), ("a2", "b1", "c2")],
        )
        lifted = NFRelation.from_1nf(rel)
        for attr in ("A", "B", "C"):
            assert unnest(nest(lifted, attr), attr) == lifted


class TestValidation:
    def test_require_same_universe(self, lifted):
        from repro.core.nest import require_same_universe

        require_same_universe(lifted, ["B", "A"])  # OK
        with pytest.raises(NFRError):
            require_same_universe(lifted, ["A"])
        with pytest.raises(NFRError):
            require_same_universe(lifted, ["A", "B", "C"])
