"""Tests for repro.relational.predicates."""

from repro.relational import predicates as p
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema
from repro.relational.tuples import FlatTuple

SCHEMA = RelationSchema(["A", "N", "M"])
T = FlatTuple(SCHEMA, ["x", 5, 5])


class TestComparisons:
    def test_eq(self):
        assert p.eq("A", "x")(T)
        assert not p.eq("A", "y")(T)

    def test_ne(self):
        assert p.ne("A", "y")(T)

    def test_lt_le_gt_ge(self):
        assert p.lt("N", 6)(T)
        assert p.le("N", 5)(T)
        assert p.gt("N", 4)(T)
        assert p.ge("N", 5)(T)

    def test_isin(self):
        assert p.isin("N", {4, 5})(T)
        assert not p.isin("N", [])(T)

    def test_attr_eq(self):
        assert p.attr_eq("N", "M")(T)
        assert not p.attr_eq("A", "N")(T)


class TestCombinators:
    def test_where_conjunction(self):
        assert p.where(p.eq("A", "x"), p.gt("N", 1))(T)
        assert not p.where(p.eq("A", "x"), p.gt("N", 10))(T)

    def test_empty_where_is_true(self):
        assert p.where()(T)

    def test_any_of(self):
        assert p.any_of(p.eq("A", "nope"), p.eq("N", 5))(T)
        assert not p.any_of()(T)

    def test_negate(self):
        assert p.negate(p.eq("A", "nope"))(T)

    def test_always(self):
        assert p.always()(T)

    def test_with_select(self):
        r = Relation.from_rows(["A", "N", "M"], [("x", 5, 5), ("y", 1, 2)])
        from repro.relational.algebra import select

        assert len(select(r, p.attr_eq("N", "M"))) == 1
