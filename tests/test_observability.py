"""Engine-wide observability: metrics registry, query traces, slow log,
workload recorder, MONITOR, and the instrumented storage layer.

Covers the registry instruments (counters/gauges/histograms and both
exposition formats), trace production through the cursor layer
(phase timings, per-operator spans, cached-plan detection, partial and
error traces), agreement between trace spans and ``EXPLAIN ANALYZE``,
the per-script I/O accounting fix (``Catalog.io_totals``), §4 operation
counts per query, and a hypothesis property pinning that tracing never
changes results.
"""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.db as db
from repro.obs import MetricsRegistry, Observability, QueryTrace
from repro.relational.relation import Relation
from repro.workloads import paper_examples as pe


def _total(metrics: dict, name: str) -> float:
    """Sum a counter/gauge across labels, or a histogram's count."""
    entry = metrics[name]
    if "values" in entry:
        return sum(entry["values"].values())
    return entry["count"]


@pytest.fixture
def conn():
    connection = db.connect()
    connection.database.register(
        "Enrollment", pe.FIG1_R1, order=["Course", "Club", "Student"]
    )
    return connection


@pytest.fixture
def flat_conn():
    connection = db.connect()
    connection.database.register(
        "R",
        Relation.from_rows(
            ["A", "B"],
            [("a1", "b1"), ("a1", "b2"), ("a2", "b1"), ("a3", "b3")],
        ),
        mode="1nf",
    )
    return connection


# -- metrics registry ---------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_inc_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "Requests.")
        c.inc()
        c.inc(2, route="a")
        c.inc(route="a")
        assert c.value() == 1
        assert c.value(route="a") == 3

    def test_counter_set_total(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total")
        c.set_total(41, op="fetch")
        c.set_total(42, op="fetch")
        assert c.value(op="fetch") == 42

    def test_gauge_set(self):
        reg = MetricsRegistry()
        g = reg.gauge("frames")
        g.set(10)
        g.set(7)
        assert g.value() == 7

    def test_histogram_quantiles_and_extremes(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency_seconds")
        for v in (0.001, 0.002, 0.004, 0.100):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(0.107)
        assert h.min == pytest.approx(0.001)
        assert h.max == pytest.approx(0.100)
        # Quantiles return bucket upper bounds: ordered and bracketing.
        assert 0.001 <= h.p50 <= h.p95 <= h.p99
        assert h.p99 >= 0.100 * 0.5  # within a log bucket of the max

    def test_empty_histogram(self):
        reg = MetricsRegistry()
        h = reg.histogram("empty_seconds")
        assert h.count == 0
        assert h.p50 == 0.0 and h.p99 == 0.0

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing_total")
        with pytest.raises(ValueError):
            reg.gauge("thing_total")

    def test_same_name_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("c_total") is reg.counter("c_total")

    def test_collector_runs_on_exposition(self):
        reg = MetricsRegistry()
        g = reg.gauge("pulled")
        calls = []
        reg.register_collector(lambda: (calls.append(1), g.set(len(calls))))
        reg.to_dict()
        reg.to_prometheus()
        assert len(calls) == 2
        assert g.value() == 2

    def test_prometheus_format(self):
        reg = MetricsRegistry()
        c = reg.counter("reqs_total", "Requests seen.")
        c.inc(3, kind="query")
        h = reg.histogram("lat_seconds", "Latency.")
        h.observe(0.5)
        text = reg.to_prometheus()
        assert "# HELP reqs_total Requests seen." in text
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{kind="query"} 3' in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text


# -- trace production through the cursor --------------------------------------


class TestQueryTraces:
    def test_query_trace_phases_and_spans(self, conn):
        obs = conn.database.obs
        cur = conn.execute("SELECT Enrollment WHERE Course = 'NF2'")
        cur.fetchall()
        t = obs.last_trace
        assert t is not None and t.kind == "query" and t.complete
        assert t.parse_s >= 0 and t.plan_s > 0 and t.execute_s > 0
        assert t.root is not None
        assert t.rows == t.root.rows
        assert t.statement == "SELECT Enrollment WHERE Course = 'NF2'"

    def test_cached_plan_flag(self, conn):
        obs = conn.database.obs
        conn.execute("Enrollment").fetchall()
        assert obs.last_trace.cached_plan is False
        conn.execute("Enrollment").fetchall()
        assert obs.last_trace.cached_plan is True

    def test_partial_trace_on_abandoned_stream(self, conn):
        obs = conn.database.obs
        cur = conn.execute("Enrollment")
        cur.fetchone()
        cur._batches.close()
        t = obs.last_trace
        assert t.kind == "query" and t.complete is False

    def test_error_trace_recorded(self, conn):
        obs = conn.database.obs
        with pytest.raises(Exception):
            conn.execute("SELECT NoSuch WHERE A = 'x'").fetchall()
        t = obs.last_trace
        assert t.error is not None and t.complete is False
        m = conn.database.metrics()
        assert _total(m, "repro_query_errors_total") >= 1

    def test_statement_trace_rows_and_kind(self, conn):
        obs = conn.database.obs
        conn.execute("INSERT INTO Enrollment VALUES ('Art', 'chess', 's9')")
        t = obs.last_trace
        assert t.kind == "insert" and t.rows == 1
        assert t.io is not None and t.io.page_writes >= 1

    def test_prepared_statement_traces_carry_text(self, conn):
        obs = conn.database.obs
        ps = conn.prepare("SELECT Enrollment WHERE Course = ?")
        ps.execute(("NF2",)).fetchall()
        assert obs.last_trace.statement == "SELECT Enrollment WHERE Course = ?"

    def test_trace_to_dict_shape(self, conn):
        conn.execute("Enrollment").fetchall()
        d = conn.database.obs.last_trace.to_dict()
        for key in ("statement", "kind", "total_s", "rows", "plan", "ops"):
            assert key in d
        assert d["plan"]["op"]

    def test_tracing_disabled_records_nothing(self, conn):
        database = conn.database
        database.set_tracing(enabled=False)
        before = len(database.traces())
        conn.execute("Enrollment").fetchall()
        assert len(database.traces()) == before

    def test_operator_timing_fills_span_times(self, conn):
        conn.database.set_tracing(operator_timing=True)
        conn.execute("SELECT Enrollment WHERE Course = 'NF2'").fetchall()
        t = conn.database.obs.last_trace
        assert all(s.time_s is not None for s in t.root.walk())


class TestTraceExplainAgreement:
    def test_span_rows_and_pages_match_explain_analyze(self, conn):
        sql = "SELECT Enrollment WHERE Course = 'NF2'"
        conn.execute(sql).fetchall()
        spans = list(conn.database.obs.last_trace.root.walk())
        text = conn.execute(f"EXPLAIN ANALYZE {sql}").fetchone()[0]
        actual_rows = [int(n) for n in re.findall(r"actual rows=(\d+)", text)]
        # EXPLAIN ANALYZE renders the plan pre-order, as walk() does.
        assert [s.rows for s in spans] == actual_rows
        total_pages = int(re.search(r"pages read=(\d+)", text).group(1))
        root = conn.database.obs.traces()[1].root  # the traced SELECT
        assert root.total("pages") == total_pages


# -- snapshot pinning ---------------------------------------------------------


class TestSnapshots:
    def test_explain_analyze_snapshot(self, flat_conn):
        text = flat_conn.execute(
            "EXPLAIN ANALYZE SELECT R WHERE A = 'a1'"
        ).fetchone()[0]
        assert text == (
            "QUERY PLAN\n"
            "Filter [A = {a1}] (est rows≈1.3, cost≈0.02, actual rows=2, "
            "batch=codes)\n"
            "  -> MemoryScan R (est rows≈4, cost≈0.02, actual rows=4, "
            "batch=rows)\n"
            "total: pages read=0, index lookups=0, bytes decoded=0\n"
            "ops: compositions=0, decompositions=0, tuple probes=4"
        )

    def test_monitor_metrics_snapshot_shape(self, conn):
        conn.execute("Enrollment").fetchall()
        text = conn.execute("MONITOR metrics").fetchone()[0]
        line_re = re.compile(
            r"^repro_[a-z0-9_]+(\{[^}]*\})? -?[0-9.e+-]+$"
        )
        for line in text.splitlines():
            assert line_re.match(line), line
        names = {line.split("{")[0].split(" ")[0] for line in text.splitlines()}
        assert {
            "repro_catalog_relations",
            "repro_plan_cache_hits_total",
            "repro_plan_cache_misses_total",
            "repro_queries_total",
            "repro_query_seconds_count",
        } <= names

    def test_monitor_traces_and_slow_and_workload(self, conn):
        conn.execute("Enrollment").fetchall()
        traces = conn.execute("MONITOR traces").fetchone()[0]
        assert "query: Enrollment" in traces
        slow = conn.execute("MONITOR slow").fetchone()[0]
        assert slow.startswith("slow-query threshold: 100ms")
        workload = conn.execute("MONITOR workload").fetchone()[0]
        assert workload.splitlines()[0] == (
            "calls  mean_ms  total_ms  rows  pages  statement"
        )

    def test_monitor_rejects_unknown_section(self, conn):
        with pytest.raises(Exception):
            conn.execute("MONITOR bogus")

    def test_monitor_without_observer(self):
        from repro.query.catalog import Catalog
        from repro.query.evaluator import evaluate
        from repro.query.parser import parse

        result = evaluate(parse("MONITOR metrics"), Catalog())
        assert "observability not attached" in result.text


# -- slow log and workload recorder -------------------------------------------


class TestSlowLogAndWorkload:
    def test_slow_log_threshold(self, conn):
        conn.database.set_tracing(slow_threshold_s=0.0)
        conn.execute("Enrollment").fetchall()
        slow = conn.database.slow_queries()
        assert slow and slow[0].kind == "query"
        m = conn.database.metrics()
        assert _total(m, "repro_slow_queries_total") >= 1

    def test_on_slow_callback(self, conn):
        hits = []
        conn.database.obs.on_slow = hits.append
        conn.database.set_tracing(slow_threshold_s=0.0)
        conn.execute("Enrollment").fetchall()
        assert hits and isinstance(hits[0], QueryTrace)

    def test_workload_aggregates_by_shape(self, conn):
        ps = conn.prepare("SELECT Enrollment WHERE Course = ?")
        for course in ("NF2", "DB", "NF2"):
            ps.execute((course,)).fetchall()
        workload = conn.database.workload()
        entry = max(workload.top(10), key=lambda s: s.count)
        assert entry.count == 3
        assert entry.kind == "query"
        # prepare() planned the shape up front, so every execution hits.
        assert entry.cached_plans == 3

    def test_trace_ring_buffer_bounded(self, conn):
        hub = Observability(trace_buffer=4)
        for i in range(10):
            hub.record(
                QueryTrace(statement=f"q{i}", kind="query", started_at=0.0)
            )
        traces = hub.traces()
        assert len(traces) == 4
        assert traces[0].statement == "q9"


# -- satellite 1: per-script I/O accounting -----------------------------------


class TestScriptIOAccounting:
    def test_script_trace_accumulates_all_statements(self, conn):
        cur = conn.cursor()
        cur.executescript(
            "INSERT INTO Enrollment VALUES ('Art', 'chess', 's1');"
            "INSERT INTO Enrollment VALUES ('Art', 'chess', 's2');"
            "INSERT INTO Enrollment VALUES ('Art', 'chess', 's3');"
        )
        t = conn.database.obs.last_trace
        assert t.kind == "script" and t.statements == 3
        # Every statement's flats, not just the final statement's.
        assert t.io.flats_produced >= 3
        assert t.io.page_writes >= 3

    def test_io_totals_accumulate_last_io_preserved(self, conn):
        catalog = conn.catalog
        before = catalog.io_totals
        conn.cursor().executescript(
            "INSERT INTO Enrollment VALUES ('Art', 'chess', 's1');"
            "INSERT INTO Enrollment VALUES ('Art', 'chess', 's2');"
        )
        window = catalog.io_totals - before
        assert window.flats_produced >= 2
        # last_io keeps its old meaning: the final statement only.
        assert catalog.last_io.flats_produced == 1

    def test_executemany_single_trace(self, conn):
        conn.executemany(
            "INSERT INTO Enrollment VALUES ('Art', 'go', ?)",
            [("s%d" % i,) for i in range(5)],
        )
        t = conn.database.obs.last_trace
        assert t.kind == "insert" and t.statements == 5 and t.rows == 5
        assert t.io.flats_produced >= 5


# -- satellite 2: §4 operation counts per query -------------------------------


class TestOperationCounts:
    def test_scan_counts_tuple_probes(self, conn):
        conn.execute("SELECT Enrollment WHERE Course = 'NF2'").fetchall()
        t = conn.database.obs.last_trace
        assert t.ops is not None and t.ops.tuple_probes > 0

    def test_unnest_counts_decompositions(self, conn):
        # Course components hold three atoms each: 3 tuples unnest to 9
        # flats through 6 Def. 2 decompositions.
        conn.execute("UNNEST Enrollment ON Course").fetchall()
        t = conn.database.obs.last_trace
        assert t.ops.decompositions == 6

    def test_join_counts_compositions(self, flat_conn):
        flat_conn.database.register(
            "S",
            Relation.from_rows(["B", "C"], [("b1", "c1"), ("b2", "c2")]),
            mode="1nf",
        )
        flat_conn.execute("FLATJOIN R, S").fetchall()
        t = flat_conn.database.obs.last_trace
        assert t.ops.compositions > 0

    def test_insert_reports_write_through_ops(self, conn):
        conn.execute("ANALYZE Enrollment")  # open the paged NFR store
        # Shares Student s1 and Club b1 with an existing tuple: the §4
        # write-through composes the new course in rather than storing
        # a separate flat.
        conn.execute("INSERT INTO Enrollment VALUES ('s1', 'c9', 'b1')")
        t = conn.database.obs.last_trace
        assert t.ops is not None
        assert t.ops.compositions >= 1

    def test_explain_analyze_reports_ops_line(self, conn):
        text = conn.execute(
            "EXPLAIN ANALYZE UNNEST Enrollment ON Course"
        ).fetchone()[0]
        assert re.search(r"ops: compositions=\d+, decompositions=[1-9]", text)


# -- metrics move under load --------------------------------------------------


class TestDatabaseMetrics:
    def test_counters_move_under_load(self, conn):
        database = conn.database
        m0 = database.metrics()
        for _ in range(3):
            conn.execute("Enrollment").fetchall()
        conn.execute("INSERT INTO Enrollment VALUES ('Art', 'go', 's1')")
        m1 = database.metrics()
        assert _total(m1, "repro_queries_total") > _total(
            m0, "repro_queries_total"
        )
        assert (
            m1["repro_query_seconds"]["count"]
            > m0["repro_query_seconds"]["count"]
        )
        assert _total(m1, "repro_plan_cache_hits_total") >= 2
        assert _total(m1, "repro_rows_returned_total") > _total(
            m0, "repro_rows_returned_total"
        )

    def test_plan_cache_invalidations_counted(self, conn):
        conn.execute("Enrollment").fetchall()
        conn.execute("INSERT INTO Enrollment VALUES ('Art', 'go', 's1')")
        conn.execute("Enrollment").fetchall()
        assert conn.plan_cache.invalidations >= 1
        m = conn.database.metrics()
        assert _total(m, "repro_plan_cache_invalidations_total") >= 1

    def test_closed_connection_totals_retained(self, conn):
        conn.execute("Enrollment").fetchall()
        conn.execute("Enrollment").fetchall()
        database = conn.database
        live = _total(database.metrics(), "repro_plan_cache_hits_total")
        conn.close()
        retained = _total(
            database.metrics(), "repro_plan_cache_hits_total"
        )
        assert retained == live >= 1

    def test_durable_metrics_include_wal_and_pool(self, tmp_path):
        connection = db.connect(str(tmp_path / "obs.db"))
        database = connection.database
        database.register(
            "Enrollment", pe.FIG1_R1, order=["Course", "Club", "Student"]
        )
        connection.execute(
            "INSERT INTO Enrollment VALUES ('Art', 'go', 's1')"
        )
        m = database.metrics()
        assert _total(m, "repro_wal_frames_total") > 0
        assert _total(m, "repro_wal_commits_total") > 0
        assert m["repro_wal_fsync_seconds"]["count"] > 0
        assert _total(m, "repro_buffer_pool_ops_total") > 0
        prom = database.metrics_text()
        assert "# TYPE repro_wal_fsync_seconds histogram" in prom
        database.close()


# -- property: tracing never changes results ----------------------------------


@st.composite
def _rows(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    return [
        (
            f"a{draw(st.integers(0, 3))}",
            f"b{draw(st.integers(0, 3))}",
            f"c{draw(st.integers(0, 5))}",
        )
        for _ in range(n)
    ]


class TestTracingTransparency:
    @settings(max_examples=25, deadline=None)
    @given(rows=_rows(), pivot=st.integers(0, 3))
    def test_results_identical_tracing_on_off(self, rows, pivot):
        sql = f"SELECT T WHERE A = 'a{pivot}'"
        results = []
        for enabled, timing in ((False, False), (True, False), (True, True)):
            connection = db.connect()
            connection.database.register(
                "T",
                Relation.from_rows(["A", "B", "C"], rows),
                order=["A", "B", "C"],
            )
            connection.database.set_tracing(
                enabled=enabled, operator_timing=timing
            )
            results.append(
                sorted(connection.execute(sql).fetchall(), key=repr)
            )
        assert results[0] == results[1] == results[2]
