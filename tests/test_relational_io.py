"""Tests for repro.relational.io."""

import pytest

from repro.errors import SchemaError
from repro.relational import io
from repro.relational.relation import Relation


@pytest.fixture
def r():
    return Relation.from_rows(
        ["Name", "Year"], [("ada", 1843), ("grace", 1952)]
    )


class TestRecords:
    def test_roundtrip(self, r):
        records = io.to_records(r)
        back = io.from_records(["Name", "Year"], records)
        assert back == r

    def test_records_sorted(self, r):
        records = io.to_records(r)
        assert records[0]["Name"] == "ada"


class TestText:
    def test_roundtrip(self, r):
        assert io.loads(io.dumps(r)) == r

    def test_numbers_parse_back_as_numbers(self, r):
        back = io.loads(io.dumps(r))
        assert back.column("Year") == {1843, 1952}

    def test_floats(self):
        r = Relation.from_rows(["X"], [(1.5,)])
        assert io.loads(io.dumps(r)).column("X") == {1.5}

    def test_none_roundtrips_as_none(self):
        r = Relation.from_rows(["X", "Y"], [(None, "y")])
        assert io.loads(io.dumps(r)).column("X") == {None}

    def test_pipe_in_value_rejected(self):
        r = Relation.from_rows(["X"], [("a|b",)])
        with pytest.raises(SchemaError):
            io.dumps(r)

    def test_empty_text_rejected(self):
        with pytest.raises(SchemaError):
            io.loads("")

    def test_ragged_row_rejected(self):
        with pytest.raises(SchemaError):
            io.loads("A|B\nonly-one")
