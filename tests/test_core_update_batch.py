"""Tests for the batch-update extension of CanonicalNFR."""

import pytest

from repro.core.canonical import canonical_form
from repro.core.update import CanonicalNFR
from repro.errors import FlatTupleNotFoundError
from repro.relational.relation import Relation
from repro.relational.tuples import FlatTuple
from repro.workloads.synthetic import (
    product_blocks,
    random_relation,
    update_stream,
)


@pytest.fixture
def rel():
    return random_relation(["A", "B", "C"], 80, domain_size=6, seed=17)


class TestBatchSemantics:
    def test_insert_batch_equals_sequential(self, rel):
        ins, _ = update_stream(rel, 20, 0, seed=18)
        batched = CanonicalNFR(rel, ["A", "B", "C"])
        sequential = CanonicalNFR(rel, ["A", "B", "C"])
        count = batched.insert_batch(ins)
        for f in ins:
            sequential.insert_flat(f)
        assert batched.relation == sequential.relation
        assert count == 20

    def test_delete_batch_equals_sequential(self, rel):
        _, dels = update_stream(rel, 0, 20, seed=19)
        batched = CanonicalNFR(rel, ["A", "B", "C"])
        sequential = CanonicalNFR(rel, ["A", "B", "C"])
        removed = batched.delete_batch(dels)
        for f in dels:
            sequential.delete_flat(f)
        assert batched.relation == sequential.relation
        assert removed == 20

    def test_batch_result_is_canonical(self, rel):
        ins, dels = update_stream(rel, 15, 15, seed=20)
        store = CanonicalNFR(rel, ["B", "A", "C"])
        store.insert_batch(ins)
        store.delete_batch(dels)
        expected_flats = (set(rel.tuples) | set(ins)) - set(dels)
        assert store.relation == canonical_form(
            Relation(rel.schema, expected_flats), ["B", "A", "C"]
        )

    def test_insert_batch_counts_only_new(self, rel):
        some_existing = rel.sorted_tuples()[:5]
        ins, _ = update_stream(rel, 5, 0, seed=21)
        store = CanonicalNFR(rel, ["A", "B", "C"])
        assert store.insert_batch(ins + some_existing) == 5

    def test_delete_batch_raises_on_missing(self, rel):
        store = CanonicalNFR(rel, ["A", "B", "C"])
        missing = FlatTuple(rel.schema, ["zz", "zz", "zz"])
        with pytest.raises(FlatTupleNotFoundError):
            store.delete_batch([missing])

    def test_batch_on_dense_product_blocks(self):
        """Product blocks force the deepest recons cascades: deleting a
        corner of a block splits it into up to n pieces."""
        rel = product_blocks(["A", "B", "C"], blocks=4, block_side=3)
        store = CanonicalNFR(rel, ["A", "B", "C"], validate=True)
        victims = rel.sorted_tuples()[:10]
        store.delete_batch(victims)
        store.insert_batch(victims)
        assert store.to_1nf() == rel


class TestLocalityOrdering:
    def test_sorted_for_locality_is_deterministic(self, rel):
        ins, _ = update_stream(rel, 10, 0, seed=22)
        store = CanonicalNFR(rel, ["C", "B", "A"])
        import random

        shuffled = list(ins)
        random.Random(0).shuffle(shuffled)
        assert store._sorted_for_locality(ins) == store._sorted_for_locality(
            shuffled
        )
