"""Tests for repro.analysis (compression, complexity, report)."""

from repro.analysis.complexity import (
    bound_table,
    growth_is_exponential,
    recurrence_p,
    theorem_a4_bound,
)
from repro.analysis.compression import (
    best_order,
    compression_report,
    compression_sweep,
    worst_order,
)
from repro.analysis.report import (
    ExperimentReport,
    monotone_nondecreasing,
    roughly_flat,
)
from repro.workloads.synthetic import product_blocks, with_planted_mvd


class TestCompression:
    def test_ratio_at_least_one(self):
        rel = with_planted_mvd(["A", "B", "C"], ["A"], ["B"], keys=6, seed=1)
        for report in compression_sweep(rel):
            assert report.tuple_ratio >= 1.0

    def test_product_blocks_best_case(self):
        rel = product_blocks(["A", "B"], blocks=4, block_side=3)
        report = compression_report(rel, ["A", "B"])
        assert report.tuple_ratio == 9.0  # 9 flats per block -> 1 tuple

    def test_best_not_worse_than_worst(self):
        rel = with_planted_mvd(["A", "B", "C"], ["A"], ["B"], keys=6, seed=2)
        assert best_order(rel).tuple_ratio >= worst_order(rel).tuple_ratio

    def test_byte_ratio_positive(self):
        rel = product_blocks(["A", "B"], blocks=2, block_side=2)
        assert compression_report(rel, ["A", "B"]).byte_ratio > 1.0

    def test_row_shape(self):
        rel = product_blocks(["A", "B"], blocks=2, block_side=2)
        row = compression_report(rel, ["A", "B"]).row()
        assert len(row) == 7


class TestComplexityBound:
    def test_base_cases(self):
        assert recurrence_p(4, 4) == 0
        assert recurrence_p(3, 4) == 1

    def test_recurrence_value(self):
        # P(2) for n=4, k=0: (4-0) + 2*(P(4)) = 4
        assert recurrence_p(2, 4) == 4

    def test_bound_monotone_in_degree(self):
        values = [theorem_a4_bound(n) for n in range(1, 9)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_bound_independent_inputs_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            theorem_a4_bound(0)
        with pytest.raises(ValueError):
            recurrence_p(9, 4)

    def test_growth_shape(self):
        assert growth_is_exponential()

    def test_bound_table(self):
        table = bound_table(4)
        assert table[0] == (1, theorem_a4_bound(1))
        assert len(table) == 4

    def test_k_reduces_bound(self):
        assert theorem_a4_bound(5, k=2) <= theorem_a4_bound(5, k=0)


class TestReport:
    def test_render_contains_all_parts(self):
        rep = ExperimentReport(
            "EX", "title", "claim", headers=["a"], rows=[[1]]
        )
        rep.add_check("works", True)
        text = rep.render()
        assert "EX" in text and "claim" in text and "PASS" in text
        assert "REPRODUCED" in text

    def test_verdict_fails_when_any_check_fails(self):
        rep = ExperimentReport("EX", "t", "c")
        rep.add_check("ok", True)
        rep.add_check("broken", False)
        assert not rep.passed
        assert "NOT REPRODUCED" in rep.render()

    def test_add_row(self):
        rep = ExperimentReport("EX", "t", "c", headers=["x", "y"])
        rep.add_row(1, 2)
        assert rep.rows == [[1, 2]]

    def test_monotone(self):
        assert monotone_nondecreasing([1, 1, 2, 3])
        assert not monotone_nondecreasing([2, 1])
        assert monotone_nondecreasing([2.0, 1.9], tolerance=0.2)

    def test_roughly_flat(self):
        assert roughly_flat([10, 12, 11])
        assert not roughly_flat([1, 10])
        assert roughly_flat([])
        assert roughly_flat([0, 1], factor=2)
