"""Tests for repro.util.ordering."""

from repro.util.ordering import sort_key, sorted_values


class TestSortKey:
    def test_orders_mixed_types_without_error(self):
        values = [3, "a", 1.5, None, True, "b", 0]
        out = sorted_values(values)
        assert out[0] is None

    def test_none_before_bool_before_numbers_before_strings(self):
        out = sorted_values(["x", 2, False, None])
        assert out == [None, False, 2, "x"]

    def test_numbers_compare_naturally(self):
        assert sorted_values([3, 1.5, 2]) == [1.5, 2, 3]

    def test_strings_compare_lexicographically(self):
        assert sorted_values(["b", "a", "ab"]) == ["a", "ab", "b"]

    def test_deterministic_for_equal_inputs(self):
        vals = ["z", 10, None, "a", 3.5]
        assert sorted_values(vals) == sorted_values(list(reversed(vals)))

    def test_bools_ordered_false_true(self):
        assert sorted_values([True, False]) == [False, True]

    def test_exotic_types_fall_back_to_repr(self):
        class Weird:
            def __repr__(self):
                return "weird"

        w = Weird()
        key = sort_key(w)
        assert key[0] == 9
        assert "weird" in key[2]

    def test_stable_key_is_tuple(self):
        assert isinstance(sort_key("x"), tuple)
