"""Tests for the write-ahead log: framing, transaction boundaries,
committed-only recovery, torn-tail tolerance, LSN-guarded replay."""

import os

import pytest

from repro.errors import StorageError
from repro.storage.pages import Page
from repro.storage.wal import (
    REC_ALLOC,
    REC_DELETE,
    REC_INSERT,
    WriteAheadLog,
    wal_path,
)


@pytest.fixture
def wal(tmp_path):
    w = WriteAheadLog(tmp_path / "db-wal")
    yield w
    w.close()


def reopen(wal_obj):
    wal_obj.close()
    return WriteAheadLog(wal_obj.path)


class TestBuffering:
    def test_nothing_on_disk_before_commit(self, wal):
        page = Page(1)
        slot = page.insert(b"rec")
        wal.log_insert(page, slot, b"rec")
        assert wal.in_flight
        assert wal.size == 0

    def test_commit_flushes_and_clears(self, wal):
        page = Page(1)
        wal.log_insert(page, page.insert(b"rec"), b"rec")
        written = wal.commit()
        assert written == wal.size > 0
        assert not wal.in_flight
        assert wal.active_dirty == set()

    def test_rollback_discards(self, wal):
        page = Page(1)
        wal.log_insert(page, page.insert(b"rec"), b"rec")
        wal.rollback()
        assert wal.size == 0
        ops, catalog, max_lsn = reopen_and_recover(wal)
        assert ops == [] and catalog is None and max_lsn == 0

    def test_lsn_stamps_pages_monotonically(self, wal):
        a, b = Page(1), Page(2)
        wal.log_insert(a, a.insert(b"x"), b"x")
        first = a.lsn
        wal.log_delete(b, 0)
        assert b.lsn == first + 1
        assert wal.active_dirty == {1, 2}

    def test_bytes_logged_counts_appends(self, wal):
        page = Page(1)
        before = wal.bytes_logged
        wal.log_insert(page, page.insert(b"12345"), b"12345")
        assert wal.bytes_logged > before
        grown = wal.bytes_logged
        wal.rollback()
        assert wal.bytes_logged == grown  # cumulative, not rewound


def reopen_and_recover(wal_obj):
    w = reopen(wal_obj)
    try:
        return w.recover()
    finally:
        w.close()


class TestRecovery:
    def test_committed_ops_in_order(self, wal):
        page = Page(4)
        wal.log_alloc(page)
        wal.log_insert(page, page.insert(b"one"), b"one")
        wal.log_insert(page, page.insert(b"two"), b"two")
        wal.log_delete(page, 0)
        wal.log_catalog(b'{"v":1}')
        wal.commit()
        ops, catalog, max_lsn = reopen_and_recover(wal)
        assert [op.kind for op in ops] == [
            REC_ALLOC, REC_INSERT, REC_INSERT, REC_DELETE,
        ]
        assert [op.lsn for op in ops] == sorted(op.lsn for op in ops)
        assert catalog == b'{"v":1}'
        assert max_lsn == ops[-1].lsn

    def test_uncommitted_tail_ignored(self, wal):
        page = Page(1)
        wal.log_insert(page, page.insert(b"keep"), b"keep")
        wal.commit()
        # simulate a crash mid-transaction: records written to the file
        # without a COMMIT marker (flush the buffer by hand)
        wal.log_insert(page, page.insert(b"lose"), b"lose")
        for frame in wal._buffer:
            wal._file.write(frame[:-1])  # and torn, for good measure
        ops, _, _ = reopen_and_recover(wal)
        assert len(ops) == 1
        assert ops[0].record == b"keep"

    def test_torn_tail_garbage_ignored(self, wal):
        page = Page(1)
        wal.log_insert(page, page.insert(b"good"), b"good")
        wal.commit()
        with open(wal.path, "ab") as f:
            f.write(b"\xde\xad\xbe\xef-torn-frame-garbage")
        ops, _, _ = reopen_and_recover(wal)
        assert len(ops) == 1

    def test_corrupt_crc_stops_scan(self, wal):
        page = Page(1)
        wal.log_insert(page, page.insert(b"aaaa"), b"aaaa")
        wal.commit()
        wal.log_insert(page, page.insert(b"bbbb"), b"bbbb")
        wal.commit()
        # flip a payload bit inside the second transaction's frame
        size = os.path.getsize(wal.path)
        with open(wal.path, "r+b") as f:
            f.seek(size - 2)
            byte = f.read(1)
            f.seek(size - 2)
            f.write(bytes([byte[0] ^ 0xFF]))
        ops, _, _ = reopen_and_recover(wal)
        assert [op.record for op in ops] == [b"aaaa"]

    def test_replay_applies_with_lsn_guard(self, wal):
        page = Page(3)
        wal.log_alloc(page)
        wal.log_insert(page, page.insert(b"first"), b"first")
        wal.log_insert(page, page.insert(b"second"), b"second")
        page.delete(0)
        wal.log_delete(page, 0)
        wal.commit()
        ops, _, _ = reopen_and_recover(wal)
        # replay onto a cold page reproduces the live page exactly
        cold = Page(3)
        for op in ops:
            if op.lsn > cold.lsn:
                op.apply(cold)
        assert cold.records() == page.records()
        assert cold.lsn == page.lsn
        # a page flushed mid-way is not double-applied
        warm = Page(3)
        for op in ops[:2]:
            op.apply(warm)
        for op in ops:
            if op.lsn > warm.lsn:
                op.apply(warm)
        assert warm.records() == page.records()

    def test_failed_commit_retry_overwrites_torn_tail(self, tmp_path):
        """A commit whose write fails mid-buffer must be retryable: the
        retry rewrites from the durable end of the log, so recovery
        never stops at the first attempt's torn frame and loses the
        acknowledged transaction."""
        fail = {"armed": False}

        def hook(event, detail):
            if event == "wal_write" and fail["armed"]:
                fail["armed"] = False  # fail exactly one write
                raise OSError("simulated ENOSPC")

        w = WriteAheadLog(tmp_path / "retry-wal", fault_hook=hook)
        page = Page(1)
        w.log_insert(page, page.insert(b"solid"), b"solid")
        w.commit()
        w.log_insert(page, page.insert(b"flaky"), b"flaky")
        fail["armed"] = True
        with pytest.raises(OSError):
            w.commit()
        assert w.in_flight  # buffer retained for the retry
        w.commit()  # retry succeeds
        ops, _, _ = reopen_and_recover(w)
        assert [op.record for op in ops] == [b"solid", b"flaky"]
        w.close()

    def test_truncate_empties_log(self, wal):
        page = Page(1)
        wal.log_insert(page, page.insert(b"z"), b"z")
        wal.commit()
        wal.truncate()
        assert wal.size == 0
        ops, catalog, max_lsn = reopen_and_recover(wal)
        assert (ops, catalog, max_lsn) == ([], None, 0)

    def test_truncate_with_in_flight_rejected(self, wal):
        page = Page(1)
        wal.log_insert(page, page.insert(b"z"), b"z")
        with pytest.raises(StorageError):
            wal.truncate()

    def test_wal_path_suffix(self):
        assert wal_path("app.db") == "app.db-wal"
