"""Property-based tests for the dependency-theory substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dependencies.chase import implies_fd, implies_mvd, is_lossless_join
from repro.dependencies.closure import (
    attribute_closure,
    fd_implies,
    fds_equivalent,
)
from repro.dependencies.cover import minimal_cover
from repro.dependencies.fd import FunctionalDependency as FD
from repro.dependencies.mvd import MultivaluedDependency as MVD
from repro.dependencies.synthesis import synthesize_3nf, verify_synthesis

ATTRS = ["A", "B", "C", "D"]


def attr_sets(min_size=1):
    return st.sets(
        st.sampled_from(ATTRS), min_size=min_size, max_size=len(ATTRS)
    )


fds_strategy = st.lists(
    st.builds(
        FD,
        attr_sets(),
        attr_sets(),
    ),
    min_size=0,
    max_size=6,
)


class TestClosureProperties:
    @given(attr_sets(), fds_strategy)
    @settings(max_examples=80, deadline=None)
    def test_closure_is_extensive(self, attrs, fds):
        assert attrs <= attribute_closure(attrs, fds)

    @given(attr_sets(), fds_strategy)
    @settings(max_examples=80, deadline=None)
    def test_closure_is_idempotent(self, attrs, fds):
        once = attribute_closure(attrs, fds)
        assert attribute_closure(once, fds) == once

    @given(attr_sets(), attr_sets(), fds_strategy)
    @settings(max_examples=80, deadline=None)
    def test_closure_is_monotone(self, a, b, fds):
        union = a | b
        assert attribute_closure(a, fds) <= attribute_closure(union, fds)

    @given(fds_strategy)
    @settings(max_examples=60, deadline=None)
    def test_every_fd_implies_itself(self, fds):
        for fd in fds:
            assert fd_implies(fds, fd)


class TestMinimalCoverProperties:
    @given(fds_strategy)
    @settings(max_examples=60, deadline=None)
    def test_cover_equivalent_to_input(self, fds):
        cover = minimal_cover(fds)
        assert fds_equivalent(cover, fds)

    @given(fds_strategy)
    @settings(max_examples=60, deadline=None)
    def test_cover_has_singleton_rhs_and_no_trivial(self, fds):
        for fd in minimal_cover(fds):
            assert len(fd.rhs) == 1
            assert not fd.is_trivial()

    @given(fds_strategy)
    @settings(max_examples=40, deadline=None)
    def test_cover_has_no_redundant_fd(self, fds):
        cover = list(minimal_cover(fds))
        for fd in cover:
            rest = [f for f in cover if f != fd]
            assert not (rest and fd_implies(rest, fd)) or not rest


class TestChaseAgreesWithClosure:
    """For pure-FD inputs the chase must agree with attribute closure."""

    @given(fds_strategy, attr_sets(), attr_sets())
    @settings(max_examples=60, deadline=None)
    def test_fd_implication_agrees(self, fds, lhs, rhs):
        candidate = FD(lhs, rhs)
        assert implies_fd(fds, candidate, ATTRS) == fd_implies(
            fds, candidate
        )

    @given(fds_strategy, attr_sets())
    @settings(max_examples=40, deadline=None)
    def test_fd_implies_corresponding_mvd(self, fds, lhs):
        closed = attribute_closure(lhs, fds)
        extra = closed - lhs
        if extra:
            assert implies_mvd(fds, MVD(lhs, extra), ATTRS)


class TestSynthesisProperties:
    @given(fds_strategy)
    @settings(max_examples=30, deadline=None)
    def test_synthesis_guarantees(self, fds):
        result = synthesize_3nf(ATTRS, fds)
        flags = verify_synthesis(ATTRS, fds, result)
        assert flags["lossless_join"]
        assert flags["dependency_preserving"]
        assert flags["all_3nf"]

    @given(fds_strategy)
    @settings(max_examples=30, deadline=None)
    def test_schemas_cover_universe(self, fds):
        result = synthesize_3nf(ATTRS, fds)
        covered = frozenset().union(*result.schemas)
        assert covered == frozenset(ATTRS)

    @given(fds_strategy)
    @settings(max_examples=30, deadline=None)
    def test_binary_split_lossless_iff_chase_says_so(self, fds):
        components = [("A", "B"), ("A", "C", "D")]
        verdict = is_lossless_join(ATTRS, components, fds)
        # cross-check against closure: split on A is lossless iff
        # A -> B or A -> CD holds.
        closed = attribute_closure({"A"}, fds)
        expected = {"B"} <= closed or {"C", "D"} <= closed
        assert verdict == expected
