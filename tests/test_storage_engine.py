"""Tests for repro.storage.engine (NFRStore, the realization view)."""

import pytest

from repro.core.canonical import canonical_form
from repro.errors import StorageError
from repro.relational.tuples import FlatTuple
from repro.storage.engine import NFRStore
from repro.workloads.university import UniversityConfig, enrollment


@pytest.fixture(scope="module")
def rel():
    return enrollment(UniversityConfig(students=12, seed=11))


@pytest.fixture(scope="module")
def nfr(rel):
    return canonical_form(rel, ["Course", "Club", "Student"])


@pytest.fixture
def flat_store(rel):
    return NFRStore.from_relation(rel)


@pytest.fixture
def nfr_store(nfr):
    return NFRStore.from_nfr(nfr)


class TestConstruction:
    def test_modes(self, flat_store, nfr_store):
        assert flat_store.mode == "1nf"
        assert nfr_store.mode == "nfr"

    def test_bad_mode_rejected(self, rel):
        with pytest.raises(StorageError):
            NFRStore(rel.schema, "weird")

    def test_record_counts(self, rel, nfr, flat_store, nfr_store):
        assert flat_store.heap.record_count == rel.cardinality
        assert nfr_store.heap.record_count == nfr.cardinality


class TestQueryEquivalence:
    """Both representations answer identically — only the cost differs."""

    def test_full_scan_agrees(self, rel, flat_store, nfr_store):
        flats1, _ = flat_store.full_scan()
        flats2, _ = nfr_store.full_scan()
        assert set(flats1) == set(flats2) == set(rel.tuples)

    def test_point_lookup_agrees(self, rel, flat_store, nfr_store):
        some = rel.sorted_tuples()[0]
        conditions = [("Student", some["Student"])]
        r1, _ = flat_store.lookup(conditions)
        r2, _ = nfr_store.lookup(conditions)
        assert set(r1) == set(r2)

    def test_contains(self, rel, flat_store, nfr_store):
        present = rel.sorted_tuples()[0]
        absent = FlatTuple(rel.schema, ["sZZZ", "cZZZ", "bZZZ"])
        assert flat_store.contains(present)[0]
        assert nfr_store.contains(present)[0]
        assert not flat_store.contains(absent)[0]
        assert not nfr_store.contains(absent)[0]

    def test_multi_condition_lookup(self, rel, flat_store, nfr_store):
        some = rel.sorted_tuples()[0]
        conditions = [
            ("Student", some["Student"]),
            ("Course", some["Course"]),
        ]
        r1, _ = flat_store.lookup(conditions)
        r2, _ = nfr_store.lookup(conditions)
        assert set(r1) == set(r2)
        assert some in set(r1)


class TestSearchSpaceReduction:
    """§2: the NFR representation visits fewer records."""

    def test_scan_visits_fewer_records(self, flat_store, nfr_store):
        _, s1 = flat_store.lookup([("Club", "b1")], use_index=False)
        _, s2 = nfr_store.lookup([("Club", "b1")], use_index=False)
        assert s2.records_visited < s1.records_visited
        assert s2.flats_produced == s1.flats_produced

    def test_storage_smaller(self, flat_store, nfr_store):
        assert (
            nfr_store.storage_summary()["payload_bytes"]
            < flat_store.storage_summary()["payload_bytes"]
        )

    def test_indexed_lookup_touches_fewer_pages_than_scan(self, flat_store):
        _, indexed = flat_store.lookup([("Student", "s1")], use_index=True)
        _, scanned = flat_store.lookup([("Student", "s1")], use_index=False)
        assert indexed.records_visited <= scanned.records_visited


class TestIndexRequirement:
    def test_unindexed_store_rejects_index_strategy(self, rel):
        store = NFRStore.from_relation(rel, indexed=False)
        with pytest.raises(StorageError):
            store.lookup([("Student", "s1")], use_index=True)

    def test_unindexed_store_scans_fine(self, rel):
        store = NFRStore.from_relation(rel, indexed=False)
        results, _ = store.lookup([("Student", "s1")], use_index=False)
        assert all(f["Student"] == "s1" for f in results)

    def test_unknown_attribute_rejected(self, flat_store):
        with pytest.raises(Exception):
            flat_store.lookup([("Nope", "x")])
