"""Tests for repro.storage.engine (NFRStore, the realization view)."""

import pytest

from repro.core.canonical import canonical_form
from repro.errors import FlatTupleNotFoundError, StorageError
from repro.relational.relation import Relation
from repro.relational.tuples import FlatTuple
from repro.storage.engine import NFRStore
from repro.workloads.university import UniversityConfig, enrollment


@pytest.fixture(scope="module")
def rel():
    return enrollment(UniversityConfig(students=12, seed=11))


@pytest.fixture(scope="module")
def nfr(rel):
    return canonical_form(rel, ["Course", "Club", "Student"])


@pytest.fixture
def flat_store(rel):
    return NFRStore.from_relation(rel)


@pytest.fixture
def nfr_store(nfr):
    return NFRStore.from_nfr(nfr)


class TestConstruction:
    def test_modes(self, flat_store, nfr_store):
        assert flat_store.mode == "1nf"
        assert nfr_store.mode == "nfr"

    def test_bad_mode_rejected(self, rel):
        with pytest.raises(StorageError):
            NFRStore(rel.schema, "weird")

    def test_record_counts(self, rel, nfr, flat_store, nfr_store):
        assert flat_store.heap.record_count == rel.cardinality
        assert nfr_store.heap.record_count == nfr.cardinality


class TestQueryEquivalence:
    """Both representations answer identically — only the cost differs."""

    def test_full_scan_agrees(self, rel, flat_store, nfr_store):
        flats1, _ = flat_store.full_scan()
        flats2, _ = nfr_store.full_scan()
        assert set(flats1) == set(flats2) == set(rel.tuples)

    def test_point_lookup_agrees(self, rel, flat_store, nfr_store):
        some = rel.sorted_tuples()[0]
        conditions = [("Student", some["Student"])]
        r1, _ = flat_store.lookup(conditions)
        r2, _ = nfr_store.lookup(conditions)
        assert set(r1) == set(r2)

    def test_contains(self, rel, flat_store, nfr_store):
        present = rel.sorted_tuples()[0]
        absent = FlatTuple(rel.schema, ["sZZZ", "cZZZ", "bZZZ"])
        assert flat_store.contains(present)[0]
        assert nfr_store.contains(present)[0]
        assert not flat_store.contains(absent)[0]
        assert not nfr_store.contains(absent)[0]

    def test_multi_condition_lookup(self, rel, flat_store, nfr_store):
        some = rel.sorted_tuples()[0]
        conditions = [
            ("Student", some["Student"]),
            ("Course", some["Course"]),
        ]
        r1, _ = flat_store.lookup(conditions)
        r2, _ = nfr_store.lookup(conditions)
        assert set(r1) == set(r2)
        assert some in set(r1)


class TestSearchSpaceReduction:
    """§2: the NFR representation visits fewer records."""

    def test_scan_visits_fewer_records(self, flat_store, nfr_store):
        _, s1 = flat_store.lookup([("Club", "b1")], use_index=False)
        _, s2 = nfr_store.lookup([("Club", "b1")], use_index=False)
        assert s2.records_visited < s1.records_visited
        assert s2.flats_produced == s1.flats_produced

    def test_storage_smaller(self, flat_store, nfr_store):
        assert (
            nfr_store.storage_summary()["payload_bytes"]
            < flat_store.storage_summary()["payload_bytes"]
        )

    def test_indexed_lookup_touches_fewer_pages_than_scan(self, flat_store):
        _, indexed = flat_store.lookup([("Student", "s1")], use_index=True)
        _, scanned = flat_store.lookup([("Student", "s1")], use_index=False)
        assert indexed.records_visited <= scanned.records_visited


def _store_pair(rel):
    """A 1nf-mode and an nfr-mode store over the same relation."""
    order = list(rel.schema.names)
    flat_store = NFRStore.from_relation(rel)
    nfr_store = NFRStore.from_nfr(canonical_form(rel, order), order=order)
    return flat_store, nfr_store


class TestMutation:
    """§4 at the physical level: both modes stay queryable and agree
    after every flat-tuple update."""

    def test_insert_visible_in_both_modes(self, rel):
        for store in _store_pair(rel):
            fresh = FlatTuple(rel.schema, ["sNEW", "cNEW", "bNEW"])
            applied, stats = store.insert_flat(fresh)
            assert applied
            assert stats.records_written >= 1
            assert store.contains(fresh)[0]
            assert set(store.full_scan()[0]) == set(rel.tuples) | {fresh}

    def test_duplicate_insert_is_noop(self, rel):
        for store in _store_pair(rel):
            existing = rel.sorted_tuples()[0]
            applied, stats = store.insert_flat(existing)
            assert not applied
            assert stats.records_touched == 0
            assert store.to_1nf() == rel

    def test_delete_not_found_in_lookup_either_strategy(self, rel):
        for store in _store_pair(rel):
            victim = rel.sorted_tuples()[0]
            stats = store.delete_flat(victim)
            assert stats.records_deleted >= 1
            assert not store.contains(victim)[0]
            conditions = [(a, victim[a]) for a in rel.schema.names]
            via_index, _ = store.lookup(conditions, use_index=True)
            via_scan, _ = store.lookup(conditions, use_index=False)
            assert victim not in via_index
            assert victim not in via_scan
            assert set(store.full_scan()[0]) == set(rel.tuples) - {victim}

    def test_delete_absent_raises(self, rel):
        for store in _store_pair(rel):
            with pytest.raises(FlatTupleNotFoundError):
                store.delete_flat(
                    FlatTuple(rel.schema, ["sZZZ", "cZZZ", "bZZZ"])
                )

    def test_update_flat(self, rel):
        for store in _store_pair(rel):
            old = rel.sorted_tuples()[0]
            new = FlatTuple(rel.schema, ["sUPD", "cUPD", "bUPD"])
            applied, _ = store.update_flat(old, new)
            assert applied
            assert not store.contains(old)[0]
            assert store.contains(new)[0]

    def test_update_to_self_is_noop(self, rel):
        for store in _store_pair(rel):
            t = rel.sorted_tuples()[0]
            applied, stats = store.update_flat(t, t)
            assert not applied
            assert stats.records_touched == 0

    def test_update_absent_raises_even_when_old_equals_new(self, rel):
        absent = FlatTuple(rel.schema, ["sZZZ", "cZZZ", "bZZZ"])
        for store in _store_pair(rel):
            with pytest.raises(FlatTupleNotFoundError):
                store.update_flat(absent, absent)
            with pytest.raises(FlatTupleNotFoundError):
                store.update_flat(
                    absent, FlatTuple(rel.schema, ["sW", "cW", "bW"])
                )

    def test_nfr_mode_stays_canonical(self, rel):
        _, store = _store_pair(rel)
        store.insert_flat(FlatTuple(rel.schema, ["sX", "cX", "bX"]))
        store.delete_flat(rel.sorted_tuples()[0])
        assert store.is_canonical()

    def test_nfr_update_touches_few_records(self, rel):
        """Theorem A-4 at the page level: one flat insert rewrites
        O(degree) records, not O(|R|)."""
        _, store = _store_pair(rel)
        _, stats = store.insert_flat(
            FlatTuple(rel.schema, ["sY", "cY", "bY"])
        )
        assert stats.records_touched < store.heap.record_count

    def test_mutation_on_permuted_flat_schema(self, rel):
        for store in _store_pair(rel):
            permuted = rel.sorted_tuples()[0].reorder(
                ["Club", "Student", "Course"]
            )
            store.delete_flat(permuted)
            assert not store.contains(permuted)[0]


class TestBatchMutation:
    def test_insert_batch_counts_new_only(self, rel):
        for store in _store_pair(rel):
            fresh = [
                FlatTuple(rel.schema, [f"s{i}N", f"c{i}N", f"b{i}N"])
                for i in range(4)
            ]
            batch = fresh + [rel.sorted_tuples()[0]]  # one duplicate
            count, stats = store.insert_batch(batch)
            assert count == 4
            assert set(store.full_scan()[0]) == set(rel.tuples) | set(fresh)
            assert stats.flats_applied == 4

    def test_delete_batch(self, rel):
        for store in _store_pair(rel):
            victims = rel.sorted_tuples()[:3]
            count, _ = store.delete_batch(victims)
            assert count == 3
            assert set(store.full_scan()[0]) == set(rel.tuples) - set(victims)

    def test_delete_batch_page_writes_batched(self, rel):
        """Deletes landing on the same page cost one page write, not
        one per record."""
        store = NFRStore.from_relation(rel)
        victims = rel.sorted_tuples()[:10]
        pages_holding = {store._rids[v][0] for v in victims}
        _, stats = store.delete_batch(victims)
        assert stats.page_writes == len(pages_holding)
        assert stats.records_deleted == 10

    def test_nfr_batch_buffers_transient_churn(self, rel):
        """A batched insert must not write more records than the net
        canonical-tuple diff (mid-algorithm tuples stay off pages)."""
        order = list(rel.schema.names)
        batched = NFRStore.from_nfr(canonical_form(rel, order), order=order)
        single = NFRStore.from_nfr(canonical_form(rel, order), order=order)
        fresh = [
            FlatTuple(rel.schema, [f"s{i}B", "cB", "bB"]) for i in range(6)
        ]
        _, batch_stats = batched.insert_batch(fresh)
        single_touched = 0
        for f in fresh:
            _, s = single.insert_flat(f)
            single_touched += s.records_touched
        assert batched.relation == single.relation
        assert batch_stats.records_touched <= single_touched
        assert batch_stats.page_writes <= single_touched


class TestVacuum:
    def test_vacuum_preserves_answers(self, rel):
        for store in _store_pair(rel):
            victims = rel.sorted_tuples()[: rel.cardinality // 2]
            store.delete_batch(victims)
            summary = store.vacuum()
            assert summary["pages_after"] <= summary["pages_before"]
            remaining = set(rel.tuples) - set(victims)
            assert set(store.full_scan()[0]) == remaining
            some = next(iter(remaining))
            via_index, _ = store.lookup(
                [("Student", some["Student"])], use_index=True
            )
            via_scan, _ = store.lookup(
                [("Student", some["Student"])], use_index=False
            )
            assert set(via_index) == set(via_scan)

    def test_mutations_continue_after_vacuum(self, rel):
        for store in _store_pair(rel):
            store.delete_batch(rel.sorted_tuples()[:5])
            store.vacuum()
            fresh = FlatTuple(rel.schema, ["sV", "cV", "bV"])
            applied, _ = store.insert_flat(fresh)
            assert applied
            assert store.contains(fresh)[0]


class TestNonCanonicalActivation:
    def test_from_nfr_non_canonical_is_canonicalized_on_mutation(self):
        """A store loaded with a non-canonical NFR is rewritten to the
        canonical form the first time §4 maintenance is needed."""
        rel = Relation.from_rows(
            ["A", "B"],
            [("a1", "b1"), ("a2", "b1"), ("a1", "b2"), ("a2", "b2")],
        )
        from repro.core.nfr_relation import NFRelation

        lifted = NFRelation.from_1nf(rel)  # all-singleton: not canonical
        store = NFRStore.from_nfr(lifted, order=["A", "B"])
        applied, stats = store.insert_flat(
            FlatTuple(rel.schema, ["a3", "b1"])
        )
        assert applied
        assert store.is_canonical()
        assert set(store.full_scan()[0]) == set(rel.tuples) | {
            FlatTuple(rel.schema, ["a3", "b1"])
        }
        # the one-time canonicalization rewrite (4 singleton records
        # deleted, 1 canonical record written) must not be billed to
        # this insert's accounting
        assert stats.records_deleted <= 2
        assert stats.records_written <= 3


class TestIndexRequirement:
    def test_unindexed_store_rejects_index_strategy(self, rel):
        store = NFRStore.from_relation(rel, indexed=False)
        with pytest.raises(StorageError):
            store.lookup([("Student", "s1")], use_index=True)

    def test_unindexed_store_scans_fine(self, rel):
        store = NFRStore.from_relation(rel, indexed=False)
        results, _ = store.lookup([("Student", "s1")], use_index=False)
        assert all(f["Student"] == "s1" for f in results)

    def test_unknown_attribute_rejected(self, flat_store):
        with pytest.raises(Exception):
            flat_store.lookup([("Nope", "x")])
