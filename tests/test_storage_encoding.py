"""Tests for repro.storage.encoding."""

import pytest

from repro.core.nfr_tuple import NFRTuple
from repro.errors import StorageError
from repro.relational.schema import RelationSchema
from repro.relational.tuples import FlatTuple
from repro.storage.encoding import (
    decode_components,
    decode_flat_tuple,
    decode_nfr_tuple,
    encode_components,
    encode_flat_tuple,
    encode_nfr_tuple,
)

SCHEMA = RelationSchema(["A", "B"])


class TestComponents:
    def test_roundtrip_strings(self):
        data = encode_components([["a1", "a2"], ["b"]])
        assert decode_components(data, 2) == [["a1", "a2"], ["b"]]

    def test_roundtrip_mixed_types(self):
        comps = [[1, -5], [2.5], [None], [True, False], ["s"]]
        data = encode_components(comps)
        assert decode_components(data, 5) == comps

    def test_unicode(self):
        comps = [["café", "naïve"]]
        data = encode_components(comps)
        assert decode_components(data, 1) == comps

    def test_trailing_bytes_detected(self):
        data = encode_components([["a"]]) + b"junk"
        with pytest.raises(StorageError, match="trailing"):
            decode_components(data, 1)

    def test_unencodable_value_rejected(self):
        with pytest.raises(StorageError):
            encode_components([[object()]])

    def test_nan_rejected_at_encode_time(self):
        with pytest.raises(StorageError, match="NaN"):
            encode_components([[float("nan")]])

    def test_infinities_roundtrip(self):
        comps = [[float("inf")], [float("-inf")], [1.5e308]]
        data = encode_components(comps)
        assert decode_components(data, 3) == comps


class TestTuples:
    def test_flat_roundtrip(self):
        t = FlatTuple(SCHEMA, ["a", 7])
        assert decode_flat_tuple(encode_flat_tuple(t), SCHEMA) == t

    def test_nfr_roundtrip(self):
        t = NFRTuple(SCHEMA, [["a1", "a2"], ["b"]])
        assert decode_nfr_tuple(encode_nfr_tuple(t), SCHEMA) == t

    def test_flat_decoder_rejects_nfr_record(self):
        t = NFRTuple(SCHEMA, [["a1", "a2"], ["b"]])
        with pytest.raises(StorageError):
            decode_flat_tuple(encode_nfr_tuple(t), SCHEMA)

    def test_nfr_encoding_smaller_than_expanded_flats(self):
        t = NFRTuple(SCHEMA, [["a1", "a2", "a3"], ["b"]])
        nfr_bytes = len(encode_nfr_tuple(t))
        flat_bytes = sum(len(encode_flat_tuple(f)) for f in t.flats())
        assert nfr_bytes < flat_bytes
