"""Tests for repro.storage.encoding."""

import pytest

from repro.core.nfr_tuple import NFRTuple
from repro.errors import StorageError
from repro.relational.schema import RelationSchema
from repro.relational.tuples import FlatTuple
from repro.storage.encoding import (
    decode_components,
    decode_flat_tuple,
    decode_nfr_tuple,
    encode_components,
    encode_flat_tuple,
    encode_nfr_tuple,
)

SCHEMA = RelationSchema(["A", "B"])


class TestComponents:
    def test_roundtrip_strings(self):
        data = encode_components([["a1", "a2"], ["b"]])
        assert decode_components(data, 2) == [["a1", "a2"], ["b"]]

    def test_roundtrip_mixed_types(self):
        comps = [[1, -5], [2.5], [None], [True, False], ["s"]]
        data = encode_components(comps)
        assert decode_components(data, 5) == comps

    def test_unicode(self):
        comps = [["café", "naïve"]]
        data = encode_components(comps)
        assert decode_components(data, 1) == comps

    def test_trailing_bytes_detected(self):
        data = encode_components([["a"]]) + b"junk"
        with pytest.raises(StorageError, match="trailing"):
            decode_components(data, 1)

    def test_unencodable_value_rejected(self):
        with pytest.raises(StorageError):
            encode_components([[object()]])

    def test_nan_rejected_at_encode_time(self):
        with pytest.raises(StorageError, match="NaN"):
            encode_components([[float("nan")]])

    def test_infinities_roundtrip(self):
        comps = [[float("inf")], [float("-inf")], [1.5e308]]
        data = encode_components(comps)
        assert decode_components(data, 3) == comps


class TestTuples:
    def test_flat_roundtrip(self):
        t = FlatTuple(SCHEMA, ["a", 7])
        assert decode_flat_tuple(encode_flat_tuple(t), SCHEMA) == t

    def test_nfr_roundtrip(self):
        t = NFRTuple(SCHEMA, [["a1", "a2"], ["b"]])
        assert decode_nfr_tuple(encode_nfr_tuple(t), SCHEMA) == t

    def test_flat_decoder_rejects_nfr_record(self):
        t = NFRTuple(SCHEMA, [["a1", "a2"], ["b"]])
        with pytest.raises(StorageError):
            decode_flat_tuple(encode_nfr_tuple(t), SCHEMA)

    def test_nfr_encoding_smaller_than_expanded_flats(self):
        t = NFRTuple(SCHEMA, [["a1", "a2", "a3"], ["b"]])
        nfr_bytes = len(encode_nfr_tuple(t))
        flat_bytes = sum(len(encode_flat_tuple(f)) for f in t.flats())
        assert nfr_bytes < flat_bytes


class TestPartialDecode:
    def test_skips_unneeded_components(self):
        from repro.storage.encoding import decode_components_partial

        comps = [["a1", "a2"], ["b"], [1, 2, 3]]
        data = encode_components(comps)
        out, nbytes = decode_components_partial(data, 3, (0, 2))
        assert out == [["a1", "a2"], None, [1, 2, 3]]
        assert 0 < nbytes < len(data)

    def test_all_needed_equals_full_decode(self):
        from repro.storage.encoding import decode_components_partial

        comps = [["a"], [True, None], [2.5]]
        data = encode_components(comps)
        out, nbytes = decode_components_partial(data, 3, range(3))
        assert out == decode_components(data, 3)
        assert nbytes == len(data)

    def test_none_needed_decodes_nothing(self):
        from repro.storage.encoding import decode_components_partial

        data = encode_components([["a"], ["b"]])
        out, nbytes = decode_components_partial(data, 2, ())
        assert out == [None, None]
        assert nbytes == 0

    def test_trailing_bytes_detected(self):
        from repro.storage.encoding import decode_components_partial

        data = encode_components([["a"]]) + b"junk"
        with pytest.raises(StorageError, match="trailing"):
            decode_components_partial(data, 1, (0,))


class TestPartialDecodeProperties:
    """Encode / skip-decode round-trip over arbitrary components and
    arbitrary needed-attribute subsets."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    _atom = st.one_of(
        st.text(max_size=8),
        st.integers(min_value=-(2**62), max_value=2**62),
        st.booleans(),
        st.none(),
        st.floats(allow_nan=False, allow_infinity=True, width=32),
    )
    _components = st.lists(
        st.lists(_atom, min_size=1, max_size=4), min_size=1, max_size=6
    )

    @given(comps=_components, data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_partial_matches_full_on_needed_subset(self, comps, data):
        from hypothesis import strategies as st
        from repro.storage.encoding import decode_components_partial

        degree = len(comps)
        needed = data.draw(
            st.sets(
                st.integers(min_value=0, max_value=degree - 1),
                max_size=degree,
            )
        )
        encoded = encode_components(comps)
        full = decode_components(encoded, degree)
        partial, nbytes = decode_components_partial(
            encoded, degree, needed
        )
        for i in range(degree):
            if i in needed:
                assert partial[i] == full[i]
            else:
                assert partial[i] is None
        assert 0 <= nbytes <= len(encoded)
        if len(needed) == degree:
            assert nbytes == len(encoded)
