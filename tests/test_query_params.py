"""Parameter placeholders, binding, and multi-statement scripts."""

import pytest

from repro.errors import BindingError, LexError, ParseError
from repro.query import ast, parse, parse_script
from repro.query.lexer import tokenize
from repro.query.params import (
    ParameterBinding,
    ParamSlots,
    bind_statement,
    collect_parameters,
    has_parameters,
    make_binding,
)


class TestLexer:
    def test_question_mark_lexes_as_param(self):
        tokens = tokenize("A CONTAINS ?")
        assert tokens[-1].kind == "PARAM"
        assert tokens[-1].value is None

    def test_named_param_lexes_with_name(self):
        tokens = tokenize("A CONTAINS :who")
        assert tokens[-1].kind == "PARAM"
        assert tokens[-1].value == "who"

    def test_bare_colon_is_a_lex_error(self):
        with pytest.raises(LexError, match="parameter name"):
            tokenize("A CONTAINS :")

    def test_semicolon_is_a_token(self):
        kinds = [t.kind for t in tokenize("R; S")]
        assert kinds == ["IDENT", ";", "IDENT"]


class TestParser:
    def test_positional_params_numbered_in_order(self):
        node = parse("SELECT R WHERE A CONTAINS ? AND B CONTAINS ?")
        params = collect_parameters(node)
        assert [p.key for p in params] == [0, 1]

    def test_named_params_collected_once(self):
        node = parse(
            "SELECT R WHERE A CONTAINS :x AND B CONTAINS :x"
        )
        params = collect_parameters(node)
        assert [p.key for p in params] == ["x"]

    def test_params_in_insert_values(self):
        node = parse("INSERT INTO R VALUES (?, 'c1', ?)")
        assert isinstance(node, ast.InsertValues)
        assert node.values[0] == ast.Parameter(0)
        assert node.values[1] == "c1"
        assert node.values[2] == ast.Parameter(1)

    def test_params_in_set_literal(self):
        node = parse("SELECT R WHERE A = {?, ?}")
        assert collect_parameters(node) == (
            ast.Parameter(0),
            ast.Parameter(1),
        )

    def test_trailing_semicolon_accepted(self):
        assert isinstance(parse("R;"), ast.Name)

    def test_transaction_statements_parse(self):
        assert isinstance(parse("BEGIN"), ast.Begin)
        assert isinstance(parse("commit"), ast.Commit)
        assert isinstance(parse("Rollback"), ast.Rollback)

    def test_parameter_repr_is_placeholder(self):
        assert repr(ast.Parameter(0)) == "?"
        assert repr(ast.Parameter("who")) == ":who"


class TestScripts:
    def test_script_splits_on_semicolons(self):
        nodes = parse_script(
            "LET X = R; INSERT INTO X VALUES ('a'); X"
        )
        assert len(nodes) == 3
        assert isinstance(nodes[0], ast.Let)
        assert isinstance(nodes[1], ast.InsertValues)
        assert isinstance(nodes[2], ast.Name)

    def test_empty_statements_skipped(self):
        assert len(parse_script(";;R;;S;")) == 2

    def test_empty_script_is_empty(self):
        assert parse_script("") == ()
        assert parse_script(" ; ; ") == ()

    def test_parse_error_reports_statement_index(self):
        with pytest.raises(ParseError, match="statement 2"):
            parse_script("R; SELECT WHERE; S")

    def test_statement_index_counts_nonempty_only(self):
        with pytest.raises(ParseError, match="statement 1"):
            parse_script("; ;SELECT WHERE")

    def test_positional_params_numbered_per_statement(self):
        first, second = parse_script(
            "SELECT R WHERE A CONTAINS ?; SELECT R WHERE B CONTAINS ?"
        )
        assert collect_parameters(first) == (ast.Parameter(0),)
        assert collect_parameters(second) == (ast.Parameter(0),)


class TestBinding:
    def test_positional_binding(self):
        node = parse("SELECT R WHERE A CONTAINS ?")
        bound = bind_statement(node, ["a1"])
        assert not has_parameters(bound)
        assert bound.condition.value == "a1"

    def test_named_binding(self):
        node = parse("INSERT INTO R VALUES (:x, :y)")
        bound = bind_statement(node, {"x": 1, "y": 2})
        assert bound.values == (1, 2)

    def test_wrong_count_rejected(self):
        node = parse("SELECT R WHERE A CONTAINS ?")
        with pytest.raises(BindingError, match="expects 1"):
            bind_statement(node, ["a1", "a2"])
        with pytest.raises(BindingError, match="got none"):
            bind_statement(node, None)

    def test_missing_and_unknown_names_rejected(self):
        node = parse("SELECT R WHERE A CONTAINS :x")
        with pytest.raises(BindingError, match="missing"):
            bind_statement(node, {})
        with pytest.raises(BindingError, match="unknown"):
            bind_statement(node, {"x": 1, "z": 2})

    def test_style_mismatch_rejected(self):
        positional = parse("SELECT R WHERE A CONTAINS ?")
        named = parse("SELECT R WHERE A CONTAINS :x")
        with pytest.raises(BindingError, match="sequence"):
            bind_statement(positional, {"0": "a"})
        with pytest.raises(BindingError, match="mapping"):
            bind_statement(named, ["a"])

    def test_params_on_parameterless_statement_rejected(self):
        node = parse("SELECT R WHERE A CONTAINS 'a1'")
        with pytest.raises(BindingError, match="no parameters"):
            bind_statement(node, ["a1"])
        # None/empty are fine
        assert bind_statement(node, None) == node
        assert bind_statement(node, []) == node

    def test_mixed_styles_in_statement_rejected(self):
        node = parse("SELECT R WHERE A CONTAINS ? AND B CONTAINS :x")
        with pytest.raises(BindingError, match="mixes"):
            make_binding(collect_parameters(node), ["a"])


class TestEvaluateWithParams:
    def test_run_binds_params(self):
        from repro.query import Catalog, run
        from repro.relational.relation import Relation

        catalog = Catalog()
        catalog.register(
            "R", Relation.from_rows(["A", "B"], [("a1", "b1"), ("a2", "b2")])
        )
        result = run("SELECT R WHERE A CONTAINS ?", catalog, params=["a1"])
        assert result.cardinality == 1

    def test_evaluate_stream_validates_binding_eagerly(self):
        from repro.query import Catalog, evaluate_stream
        from repro.relational.relation import Relation

        catalog = Catalog()
        catalog.register(
            "R", Relation.from_rows(["A", "B"], [("a1", "b1")])
        )
        node = parse("SELECT R WHERE A CONTAINS ?")
        # wrong count raises at the call site, before any iteration
        with pytest.raises(BindingError):
            evaluate_stream(node, catalog, params=["a1", "a2"])
        tuples = [
            t
            for batch in evaluate_stream(node, catalog, params=["a1"])
            for t in batch
        ]
        assert len(tuples) == 1

    def test_evaluate_unbound_parameters_raise(self):
        from repro.query import Catalog, evaluate, evaluate_naive
        from repro.errors import EvaluationError
        from repro.relational.relation import Relation

        catalog = Catalog()
        catalog.register(
            "R", Relation.from_rows(["A", "B"], [("a1", "b1")])
        )
        node = parse("SELECT R WHERE A CONTAINS ?")
        with pytest.raises(EvaluationError):
            evaluate(node, catalog)
        with pytest.raises(EvaluationError):
            evaluate_naive(node, catalog)


class TestParamSlots:
    def test_resolve_literal_passthrough(self):
        slots = ParamSlots()
        assert slots.resolve("x") == "x"

    def test_resolve_unbound_parameter_raises(self):
        slots = ParamSlots()
        with pytest.raises(BindingError, match="without bound values"):
            slots.resolve(ast.Parameter(0))

    def test_rebinding_bumps_generation(self):
        slots = ParamSlots()
        g0 = slots.generation
        slots.bind(ParameterBinding({0: "a"}))
        assert slots.generation == g0 + 1
        assert slots.resolve(ast.Parameter(0)) == "a"
        slots.bind(ParameterBinding({0: "b"}))
        assert slots.generation == g0 + 2
        assert slots.resolve(ast.Parameter(0)) == "b"
