"""Tests for repro.core.invariants (executable theorem statements)."""

from repro.core import invariants as inv
from repro.core.composition import compose
from repro.core.nfr_relation import NFRelation
from repro.relational.relation import Relation


class TestTheorem1:
    def test_lifted_form(self, small_ab):
        nfr = NFRelation.from_1nf(small_ab)
        assert inv.theorem1_r_star_unique(nfr, small_ab)

    def test_canonical_form(self, small_ab):
        from repro.core.canonical import canonical_form

        form = canonical_form(small_ab, ["B", "A"])
        assert inv.theorem1_r_star_unique(form, small_ab)

    def test_fails_for_wrong_original(self, small_ab):
        nfr = NFRelation.from_1nf(small_ab)
        other = Relation.from_rows(["A", "B"], [("x", "y")])
        assert not inv.theorem1_r_star_unique(nfr, other)


class TestTheorem2:
    def test_confluence_small(self, small_ab):
        assert inv.theorem2_confluence(small_ab, ["A", "B"], trials=6)

    def test_confluence_three_attrs(self, product_abc):
        assert inv.theorem2_confluence(product_abc, ["C", "A", "B"], trials=4)


class TestCanonicalIrreducible:
    def test_all_orders(self, small_ab):
        for order in (["A", "B"], ["B", "A"]):
            assert inv.canonical_is_irreducible(small_ab, order)


class TestTheorem5:
    def test_fixedness_of_canonical_forms(self):
        from repro.workloads.paper_examples import EXAMPLE2_R3

        for order in (["A", "B", "C"], ["B", "A", "C"], ["C", "B", "A"]):
            assert inv.theorem5_canonical_fixedness(EXAMPLE2_R3, order)

    def test_degree_one_vacuous(self):
        r = Relation.from_rows(["A"], [("a1",), ("a2",)])
        assert inv.theorem5_canonical_fixedness(r, ["A"])


class TestCompositionInvariants:
    def test_information_preserved(self, small_ab):
        nfr = NFRelation.from_1nf(small_ab)
        tuples = nfr.sorted_tuples()
        # compose (a1,b1) with (a2,b1) over A
        r = tuples[0]
        s = next(t for t in tuples if t != r and t.differs_only_on(r, "A"))
        merged = compose(r, s, "A")
        after = nfr.replace_tuples([r, s], [merged])
        assert inv.information_preserved(nfr, after)
        assert inv.composition_monotone(nfr, after)

    def test_monotone_fails_on_unrelated_edit(self, small_ab):
        nfr = NFRelation.from_1nf(small_ab)
        smaller = nfr.without_tuple(nfr.sorted_tuples()[0])
        assert not inv.composition_monotone(nfr, smaller)
