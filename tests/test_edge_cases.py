"""Edge cases and failure injection across subsystems.

These tests pin behaviours at the boundaries: degree-1 schemas, empty
relations, oversized records, exhausted stores, and the error paths a
downstream user will eventually hit.
"""

import pytest

from repro.core.canonical import canonical_form
from repro.core.cardinality import Cardinality, classify_attribute
from repro.core.irreducible import is_irreducible
from repro.core.nest import nest
from repro.core.nfr_relation import NFRelation
from repro.core.update import CanonicalNFR
from repro.errors import (
    FlatTupleNotFoundError,
    PageOverflowError,
    StorageError,
)
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema
from repro.relational.tuples import FlatTuple


class TestDegreeOne:
    """Degree-1 NFRs: every pair of distinct tuples is composable
    (Def. 1 with no other attributes), so the canonical form is a single
    tuple holding the whole active domain."""

    def test_canonical_is_single_tuple(self):
        rel = Relation.from_rows(["A"], [("a1",), ("a2",), ("a3",)])
        form = canonical_form(rel, ["A"])
        assert form.cardinality == 1
        assert form.to_1nf() == rel

    def test_updates_on_degree_one(self):
        rel = Relation.from_rows(["A"], [("a1",), ("a2",)])
        store = CanonicalNFR(rel, ["A"], validate=True)
        store.insert_values("a3")
        store.delete_values("a1")
        assert store.cardinality == 1
        assert store.to_1nf().column("A") == {"a2", "a3"}

    def test_drain_degree_one_to_empty(self):
        rel = Relation.from_rows(["A"], [("a1",), ("a2",)])
        store = CanonicalNFR(rel, ["A"], validate=True)
        store.delete_values("a1")
        store.delete_values("a2")
        assert store.cardinality == 0

    def test_cardinality_classification(self):
        form = canonical_form(
            Relation.from_rows(["A"], [("a1",), ("a2",)]), ["A"]
        )
        assert classify_attribute(form, "A") is Cardinality.N_ONE


class TestEmptyRelations:
    def test_empty_canonical(self, ab_schema):
        empty = Relation(ab_schema)
        assert canonical_form(empty, ["A", "B"]).cardinality == 0

    def test_empty_is_irreducible(self, ab_schema):
        assert is_irreducible(NFRelation(ab_schema))

    def test_empty_store_delete_raises(self, ab_schema):
        store = CanonicalNFR(Relation(ab_schema), ["A", "B"])
        with pytest.raises(FlatTupleNotFoundError):
            store.delete_flat(FlatTuple(ab_schema, ["x", "y"]))

    def test_empty_r_star(self, ab_schema):
        assert NFRelation(ab_schema).to_1nf().cardinality == 0


class TestSingleFlatLifecycle:
    def test_insert_then_delete_everything_repeatedly(self, ab_schema):
        store = CanonicalNFR(Relation(ab_schema), ["B", "A"], validate=True)
        for round_no in range(3):
            store.insert_values("a", "b")
            assert store.cardinality == 1
            store.delete_values("a", "b")
            assert store.cardinality == 0


class TestStorageFailureInjection:
    def test_record_larger_than_page_rejected_at_engine_level(self):
        from repro.storage.engine import NFRStore

        schema = RelationSchema(["Blob"])
        store = NFRStore(schema, "1nf")
        huge = FlatTuple(schema, ["x" * 10_000])
        with pytest.raises(PageOverflowError):
            store._insert_flat_record(huge)

    def test_corrupt_record_rejected(self):
        from repro.storage.encoding import decode_components

        with pytest.raises(Exception):
            decode_components(b"\x00\x05junk!", 1)

    def test_engine_rejects_unknown_mode(self):
        from repro.storage.engine import NFRStore

        with pytest.raises(StorageError):
            NFRStore(RelationSchema(["A"]), "columnar")

    def test_heap_delete_then_read_raises(self):
        from repro.storage.heap import HeapFile

        heap = HeapFile()
        rid = heap.insert(b"x")
        heap.delete(rid)
        from repro.errors import RecordNotFoundError

        with pytest.raises(RecordNotFoundError):
            heap.read(rid)


class TestUpdateProbeScaling:
    """Candidate search is index-backed: probe counts per update must
    not scale with |R| (wall-clock independence, not just composition
    independence)."""

    def test_probes_flat_across_sizes(self):
        from repro.workloads.synthetic import random_relation, update_stream

        probes = []
        for size in (100, 800):
            rel = random_relation(
                ["A", "B", "C"], size, domain_size=16, seed=27
            )
            store = CanonicalNFR(rel, ["A", "B", "C"])
            store.counter.reset()
            ins, dels = update_stream(rel, 15, 15, seed=28)
            for f in ins:
                store.insert_flat(f)
            for f in dels:
                store.delete_flat(f)
            probes.append(store.counter.tuple_probes / 30)
        assert probes[1] <= probes[0] * 3 + 5


class TestMixedTypeValues:
    def test_nfr_with_mixed_atomic_types(self):
        nfr = NFRelation.from_components(
            ["K", "V"], [([1, 2], ["x"]), (["s"], [3.5])]
        )
        assert nfr.flat_count == 3
        table = nfr.to_table()
        assert "1, 2" in table

    def test_update_with_mixed_types(self):
        rel = Relation.from_rows(["K", "V"], [(1, "x"), (2, "y")])
        store = CanonicalNFR(rel, ["K", "V"], validate=True)
        store.insert_values(3, "x")
        store.delete_values(1, "x")
        assert store.to_1nf().column("K") == {2, 3}

    def test_none_values_supported(self):
        rel = Relation.from_rows(["A", "B"], [(None, "b"), ("a", None)])
        form = canonical_form(rel, ["A", "B"])
        assert form.to_1nf() == rel


class TestNestEdgeCases:
    def test_nest_single_tuple_is_identity(self):
        nfr = NFRelation.from_components(["A", "B"], [(["a"], ["b"])])
        assert nest(nfr, "A") == nfr

    def test_nest_all_identical_groups(self):
        # all tuples share B -> one merged tuple
        nfr = NFRelation.from_components(
            ["A", "B"],
            [(["a1"], ["b"]), (["a2"], ["b"]), (["a3"], ["b"])],
        )
        out = nest(nfr, "A")
        assert out.cardinality == 1
        assert len(out.sorted_tuples()[0]["A"]) == 3

    def test_nest_overlapping_components_union(self):
        nfr = NFRelation.from_components(
            ["A", "B"],
            [(["a1", "a2"], ["b"]), (["a2", "a3"], ["b"])],
        )
        out = nest(nfr, "A")
        assert out.cardinality == 1
        assert set(out.sorted_tuples()[0]["A"]) == {"a1", "a2", "a3"}
