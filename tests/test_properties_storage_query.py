"""Property-based tests for the storage engine and query language.

The storage invariant: both representations of any relation answer any
conjunctive lookup identically.  The query invariant: parser round-trips
and evaluator agreement with the direct core operators.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.canonical import canonical_form
from repro.core.nest import nest_sequence
from repro.core.nfr_relation import NFRelation
from repro.query import Catalog, run
from repro.relational.relation import Relation
from repro.storage.encoding import (
    decode_components,
    encode_components,
)
from repro.storage.engine import NFRStore

ATTRS = ["A", "B", "C"]

atom = st.one_of(
    st.integers(min_value=-5, max_value=5),
    st.text(
        alphabet="abcxyz",
        min_size=1,
        max_size=4,
    ),
)


def relations(max_rows=10):
    row = st.tuples(*[atom for _ in ATTRS])
    return st.lists(row, min_size=1, max_size=max_rows).map(
        lambda rows: Relation.from_rows(ATTRS, rows)
    )


class TestEncodingRoundtrip:
    @given(
        st.lists(
            st.lists(atom, min_size=1, max_size=4),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_components_roundtrip(self, components):
        data = encode_components(components)
        assert decode_components(data, len(components)) == components


class TestStorageEquivalence:
    @given(relations(), st.integers(min_value=0, max_value=2), atom)
    @settings(max_examples=40, deadline=None)
    def test_flat_and_nfr_stores_agree(self, rel, attr_idx, value):
        attr = ATTRS[attr_idx]
        nfr = canonical_form(rel, ATTRS)
        flat_store = NFRStore.from_relation(rel)
        nfr_store = NFRStore.from_nfr(nfr)
        conditions = [(attr, value)]
        r1, _ = flat_store.lookup(conditions, use_index=False)
        r2, _ = nfr_store.lookup(conditions, use_index=False)
        r3, _ = flat_store.lookup(conditions, use_index=True)
        r4, _ = nfr_store.lookup(conditions, use_index=True)
        assert set(r1) == set(r2) == set(r3) == set(r4)

    @given(relations())
    @settings(max_examples=30, deadline=None)
    def test_full_scan_recovers_r_star(self, rel):
        nfr_store = NFRStore.from_nfr(canonical_form(rel, ATTRS))
        flats, _ = nfr_store.full_scan()
        assert set(flats) == set(rel.tuples)


class TestMutationEquivalence:
    """For random relations and random mutation sequences, both store
    modes answer every lookup (index and scan strategy) exactly like an
    in-memory filter of the logical relation — after every mutation."""

    @given(
        relations(max_rows=6),
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete"]),
                st.tuples(atom, atom, atom),
            ),
            min_size=1,
            max_size=8,
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_stores_track_reference_under_mutation(self, rel, ops):
        from repro.relational.tuples import FlatTuple

        flat_store = NFRStore.from_relation(rel)
        nfr_store = NFRStore.from_nfr(
            canonical_form(rel, ATTRS), order=ATTRS
        )
        reference = set(rel.tuples)
        for kind, row in ops:
            flat = FlatTuple(rel.schema, list(row))
            if kind == "insert":
                a1, _ = flat_store.insert_flat(flat)
                a2, _ = nfr_store.insert_flat(flat)
                assert a1 == a2 == (flat not in reference)
                reference.add(flat)
            elif flat in reference:
                flat_store.delete_flat(flat)
                nfr_store.delete_flat(flat)
                reference.discard(flat)
            else:
                continue
            # every single-attribute condition derived from the mutated
            # tuple, plus the full-tuple conjunction
            conditions_list = [
                [(a, flat[a])] for a in ATTRS
            ] + [[(a, flat[a]) for a in ATTRS]]
            for conditions in conditions_list:
                expected = {
                    t
                    for t in reference
                    if all(t[a] == v for a, v in conditions)
                }
                for store in (flat_store, nfr_store):
                    via_index, _ = store.lookup(conditions, use_index=True)
                    via_scan, _ = store.lookup(conditions, use_index=False)
                    assert set(via_index) == expected
                    assert set(via_scan) == expected
            assert set(flat_store.full_scan()[0]) == reference
            assert set(nfr_store.full_scan()[0]) == reference
        assert nfr_store.is_canonical()


class TestQueryAgainstCore:
    @given(relations())
    @settings(max_examples=30, deadline=None)
    def test_nest_statement_matches_core(self, rel):
        catalog = Catalog()
        catalog.register("R", rel)
        via_query = run("NEST R BY (A, B)", catalog)
        via_core = nest_sequence(NFRelation.from_1nf(rel), ["A", "B"])
        assert via_query == via_core

    @given(relations())
    @settings(max_examples=30, deadline=None)
    def test_canonical_statement_matches_core(self, rel):
        catalog = Catalog()
        catalog.register("R", rel)
        via_query = run("CANONICAL R ORDER (C, B, A)", catalog)
        assert via_query == canonical_form(rel, ["C", "B", "A"])

    @given(relations())
    @settings(max_examples=30, deadline=None)
    def test_flatten_is_identity_on_information(self, rel):
        catalog = Catalog()
        catalog.register("R", rel)
        flat = run("FLATTEN (NEST R BY (A))", catalog)
        assert flat == NFRelation.from_1nf(rel)
