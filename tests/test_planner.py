"""Tests for the cost-based query planner (repro.planner)."""

import pytest

from repro.errors import ParseError
from repro.nf2_algebra import laws
from repro.nf2_algebra.operators import Scan, Select, contains
from repro.nf2_algebra.rewrite import optimize
from repro.planner import collect_stats, plan
from repro.planner import logical as L
from repro.planner import physical as P
from repro.planner.explain import ExplainResult
from repro.planner.rules import RewriteContext, rewrite
from repro.query import Catalog, evaluate_naive, parse, run
from repro.relational.relation import Relation
from repro.workloads import paper_examples as pe
from repro.workloads.synthetic import random_relation


@pytest.fixture
def rel():
    return Relation.from_rows(
        ["Student", "Course", "Club"],
        [
            ("s1", "c1", "b1"),
            ("s1", "c2", "b1"),
            ("s2", "c1", "b2"),
            ("s2", "c2", "b2"),
        ],
    )


@pytest.fixture
def catalog(rel):
    cat = Catalog()
    cat.register("R", rel, order=["Course", "Club", "Student"])
    return cat


def _ctx(catalog):
    def scan_names(name):
        return catalog.get(name).schema.names

    def scan_flat_on(name, attribute):
        attr = catalog.stats_for(name).attribute(attribute)
        return attr is not None and attr.is_flat

    return RewriteContext(scan_names, scan_flat_on)


class TestConditionAnalysis:
    def test_conjuncts_flattened(self):
        node = parse("SELECT R WHERE A CONTAINS 'x' AND B = 'y' AND C = {'z'}")
        lowered = L.lower(node)
        assert isinstance(lowered, L.LSelect)
        assert len(lowered.conjuncts) == 3

    def test_atom_stability(self):
        from repro.query import ast

        assert L.condition_atom_stable(ast.Contains("A", "x"))
        assert not L.condition_atom_stable(ast.SingletonEquals("A", "x"))
        assert not L.condition_atom_stable(
            ast.ComponentEquals("A", ("x", "y"))
        )

    def test_indexable_atoms(self):
        from repro.query import ast

        assert L.indexable_atoms(ast.Contains("A", "x")) == [("A", "x")]
        assert L.indexable_atoms(ast.ComponentEquals("A", ("x", "y"))) == [
            ("A", "x"),
            ("A", "y"),
        ]


class TestConstantFolding:
    def test_duplicates_collapse(self):
        from repro.query import ast

        c = ast.Contains("A", "x")
        assert L.fold_conjuncts((c, c)) == (c,)

    def test_contains_subsumed_by_equality(self):
        from repro.query import ast

        folded = L.fold_conjuncts(
            (ast.Contains("A", "x"), ast.SingletonEquals("A", "x"))
        )
        assert folded == (ast.SingletonEquals("A", "x"),)

    def test_contradictory_equalities(self):
        from repro.query import ast

        folded = L.fold_conjuncts(
            (ast.SingletonEquals("A", "x"), ast.SingletonEquals("A", "y"))
        )
        assert folded is L.CONTRADICTION

    def test_contains_contradicts_equality(self):
        from repro.query import ast

        folded = L.fold_conjuncts(
            (ast.Contains("A", "z"), ast.ComponentEquals("A", ("x", "y")))
        )
        assert folded is L.CONTRADICTION

    def test_contradiction_plans_empty(self, catalog):
        out = run(
            "SELECT R WHERE Course = 'c1' AND Course = 'c2'", catalog
        )
        assert out.cardinality == 0
        assert out.schema.names == ("Student", "Course", "Club")
        text = run(
            "EXPLAIN SELECT R WHERE Course = 'c1' AND Course = 'c2'",
            catalog,
        ).to_table()
        assert "EmptyResult" in text


class TestRewriteRules:
    def test_select_pushdown_below_nest(self, catalog):
        node = parse("SELECT (NEST R BY (Course)) WHERE Club CONTAINS 'b1'")
        rewritten = rewrite(L.lower(node), _ctx(catalog))
        # the atom-stable conjunct moves below the nest
        assert isinstance(rewritten, L.LNest)
        assert isinstance(rewritten.source, L.LSelect)

    def test_equality_not_pushed_below_nest(self, catalog):
        node = parse("SELECT (NEST R BY (Course)) WHERE Club = 'b1'")
        rewritten = rewrite(L.lower(node), _ctx(catalog))
        # component equality is not atom-stable: it must stay above
        assert isinstance(rewritten, L.LSelect)
        assert isinstance(rewritten.source, L.LNest)

    def test_select_on_nested_attribute_not_pushed(self, catalog):
        node = parse(
            "SELECT (NEST R BY (Course)) WHERE Course CONTAINS 'c1'"
        )
        rewritten = rewrite(L.lower(node), _ctx(catalog))
        assert isinstance(rewritten, L.LSelect)

    def test_select_pushdown_into_join_side(self, catalog):
        other = Relation.from_rows(
            ["Course", "Teacher"], [("c1", "t1"), ("c2", "t2")]
        )
        catalog.register("T", other)
        node = parse("SELECT (JOIN R, T) WHERE Teacher CONTAINS 't1'")
        rewritten = rewrite(L.lower(node), _ctx(catalog))
        assert isinstance(rewritten, L.LJoin)
        assert isinstance(rewritten.right, L.LSelect)

    def test_select_pushdown_through_union(self, catalog):
        node = parse("SELECT (UNION R, R) WHERE Club CONTAINS 'b1'")
        rewritten = rewrite(L.lower(node), _ctx(catalog))
        assert isinstance(rewritten, L.LUnion)
        assert isinstance(rewritten.left, L.LSelect)
        assert isinstance(rewritten.right, L.LSelect)

    def test_select_pushdown_below_project(self, catalog):
        node = parse(
            "SELECT (PROJECT R ON (Student, Club)) WHERE Club CONTAINS 'b1'"
        )
        rewritten = rewrite(L.lower(node), _ctx(catalog))
        assert isinstance(rewritten, L.LProject)
        assert isinstance(rewritten.source, L.LSelect)

    def test_identity_projection_pruned(self, catalog):
        node = parse("PROJECT R ON (Student, Course, Club)")
        rewritten = rewrite(L.lower(node), _ctx(catalog))
        assert isinstance(rewritten, L.LScan)

    def test_unnest_of_nest_eliminated_on_flat_source(self, catalog):
        # R is lifted 1NF: flat on every attribute.
        node = parse("UNNEST (NEST R BY (Course)) ON Course")
        rewritten = rewrite(L.lower(node), _ctx(catalog))
        assert isinstance(rewritten, L.LScan)

    def test_rewrites_preserve_results(self, catalog):
        queries = [
            "SELECT (NEST R BY (Course)) WHERE Club CONTAINS 'b1'",
            "SELECT (PROJECT R ON (Student, Club)) WHERE Club CONTAINS 'b1'",
            "SELECT (UNION R, R) WHERE Student CONTAINS 's1'",
            "UNNEST (NEST R BY (Course)) ON Course",
            "SELECT (FLATJOIN R, R) WHERE Club CONTAINS 'b1'",
        ]
        for q in queries:
            assert run(q, catalog) == evaluate_naive(parse(q), catalog), q


class TestStatistics:
    def test_collect_stats_counts(self, catalog):
        stats = catalog.stats_for("R")
        assert stats.tuple_count == 4
        assert stats.flat_count == 4
        assert stats.attribute("Student").distinct_atoms == 2
        assert stats.attribute("Student").is_flat

    def test_stats_cached_and_invalidated_by_rebind(self, catalog, rel):
        first = catalog.stats_for("R")
        assert catalog.stats_for("R") is first  # cached
        catalog.register("R", rel)
        assert catalog.stats_for("R") is not first

    def test_stats_invalidated_by_insert(self, catalog):
        before = catalog.stats_for("R")
        run("INSERT INTO R VALUES ('s3', 'c1', 'b3')", catalog)
        after = catalog.stats_for("R")
        assert after is not before
        assert after.attribute("Club").distinct_atoms == 3

    def test_stats_invalidated_by_delete(self, catalog):
        run("ANALYZE R", catalog)
        before = catalog.stats_for("R")
        run("DELETE FROM R VALUES ('s1', 'c1', 'b1')", catalog)
        assert catalog.stats_for("R") is not before

    def test_stats_invalidated_by_direct_store_mutation(self, catalog):
        from repro.relational.tuples import FlatTuple

        store = catalog.store_for("R")
        before = catalog.stats_for("R")
        store.insert_flat(
            FlatTuple(store.schema, ["s9", "c9", "b9"])
        )
        assert catalog.stats_for("R") is not before

    def test_analyze_statement_reports(self, catalog):
        out = run("ANALYZE R", catalog)
        assert isinstance(out, ExplainResult)
        assert "ANALYZE R" in out.to_table()
        assert "AtomIndex" in out.to_table()


class TestAccessPaths:
    @pytest.fixture
    def big_catalog(self):
        cat = Catalog()
        cat.register(
            "Big",
            random_relation(["A", "B", "C"], 2000, domain_size=40, seed=7),
            mode="1nf",
        )
        run("ANALYZE Big", cat)
        return cat

    def test_index_scan_chosen_for_selective_predicate(self, big_catalog):
        text = run(
            "EXPLAIN SELECT Big WHERE A = 'a3'", big_catalog
        ).to_table()
        assert "IndexScan" in text

    def test_index_scan_reads_fewer_pages(self, big_catalog):
        physical = plan(
            parse("SELECT Big WHERE A = 'a3'"), big_catalog
        )
        result = physical.execute()
        idx_pages = physical.root.total_pages_read()
        heap = plan(
            parse("SELECT Big WHERE A = 'a3'"),
            big_catalog,
            use_index=False,
        )
        assert heap.execute() == result
        heap_pages = heap.root.total_pages_read()
        assert idx_pages * 5 <= heap_pages

    def test_heap_scan_without_index_flag(self, big_catalog):
        physical = plan(
            parse("SELECT Big WHERE A = 'a3'"),
            big_catalog,
            use_index=False,
        )
        assert isinstance(physical.root, P.HeapScan)

    def test_memory_scan_without_open_store(self, catalog):
        physical = plan(parse("SELECT R WHERE Club CONTAINS 'b1'"), catalog)
        assert isinstance(physical.root, P.Filter)
        assert isinstance(physical.root.child, P.MemoryScan)

    def test_planned_query_records_io(self, big_catalog):
        big_catalog.last_io = None
        run("SELECT Big WHERE A = 'a3'", big_catalog)
        assert big_catalog.last_io is not None
        assert big_catalog.last_io.page_reads >= 1


class TestExplain:
    def test_explain_shows_plan_without_executing(self, catalog):
        out = run("EXPLAIN SELECT R WHERE Club CONTAINS 'b1'", catalog)
        assert isinstance(out, ExplainResult)
        assert "QUERY PLAN" in out.to_table()
        assert "actual" not in out.to_table()

    def test_explain_analyze_shows_actuals(self, catalog):
        run("ANALYZE R", catalog)
        out = run(
            "EXPLAIN ANALYZE SELECT R WHERE Club CONTAINS 'b1'", catalog
        )
        text = out.to_table()
        assert "actual rows=" in text
        assert "total: pages read=" in text

    def test_explain_join_shows_hash_join(self, catalog):
        text = run("EXPLAIN JOIN R, R", catalog).to_table()
        assert "HashJoin" in text


class TestPlannedEquivalence:
    def test_paper_fig1(self):
        cat = Catalog()
        cat.register(
            "Enrollment", pe.FIG1_R1, order=["Course", "Club", "Student"]
        )
        queries = [
            "Enrollment",
            "FLATTEN Enrollment",
            "SELECT Enrollment WHERE Club CONTAINS 'b1'",
            "NEST Enrollment BY (Course)",
            "PROJECT Enrollment ON (Student, Club)",
            "CANONICAL Enrollment ORDER (Club, Course, Student)",
            "JOIN Enrollment, Enrollment",
            "FLATJOIN Enrollment, Enrollment",
            "UNION Enrollment, Enrollment",
            "DIFFERENCE Enrollment, Enrollment",
        ]
        for q in queries:
            assert run(q, cat) == evaluate_naive(parse(q), cat), q

    def test_after_analyze_results_match_catalog_entry(self, catalog):
        run("ANALYZE R", catalog)
        out = run("SELECT R WHERE Club CONTAINS 'b1'", catalog)
        naive = evaluate_naive(
            parse("SELECT R WHERE Club CONTAINS 'b1'"), catalog
        )
        assert out == naive


class TestHashJoins:
    def test_nf2_hash_join_matches_naive(self, catalog):
        from repro.query.evaluator import _nf2_join

        left = catalog.get("R")
        right = run("NEST R BY (Course)", catalog)
        assert P.nf2_hash_join(left, right) == _nf2_join(left, right)

    def test_cross_product_when_no_shared(self, catalog):
        other = Relation.from_rows(["X"], [("x1",), ("x2",)])
        catalog.register("X", other)
        out = run("JOIN R, X", catalog)
        assert out.cardinality == 8


class TestParserPositions:
    def test_error_includes_line_and_column(self):
        with pytest.raises(ParseError, match=r"line 2, column 3"):
            parse("SELECT R\n  WITH Club CONTAINS 'b1'")

    def test_lex_error_includes_line_and_column(self):
        from repro.errors import LexError

        with pytest.raises(LexError, match=r"line 1, column 8"):
            parse("SELECT @")

    def test_parameter_token_renders_in_parse_error(self):
        # `?` lexes as a parameter placeholder now; using it where an
        # expression is required is a parse error that shows `?`.
        with pytest.raises(ParseError, match=r"unexpected token \?"):
            parse("SELECT ?")

    def test_single_line_error_is_line_one(self):
        with pytest.raises(ParseError, match=r"line 1"):
            parse("PROJECT R ON Student")


class TestAlgebraExtensions:
    def test_select_commutes_with_unnest_law(self, catalog):
        relation = run("NEST R BY (Course)", catalog)
        p = contains("Club", "b1")
        assert laws.select_commutes_with_unnest(relation, "Course", p)

    def test_select_idempotent_law(self, catalog):
        assert laws.select_idempotent(
            catalog.get("R"), contains("Club", "b1")
        )

    def test_duplicate_select_collapsed(self, rel):
        from repro.core.nfr_relation import NFRelation

        nfr = NFRelation.from_1nf(rel)
        p = contains("Club", "b1")
        tree = Select(Select(Scan(nfr, "R"), p), p)
        optimized = optimize(tree)
        assert isinstance(optimized, Select)
        assert isinstance(optimized.source, Scan)
