"""Contract tests for the public API surface.

Everything exported from ``repro`` must exist, be importable, and carry
a docstring; the version must be a sane semver string; and the package
docstring's quickstart snippet must actually run.
"""

import repro


class TestExports:
    def test_all_names_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_exports_have_docstrings(self):
        undocumented = [
            name
            for name in repro.__all__
            if name != "__version__"
            and not (getattr(repro, name).__doc__ or "").strip()
        ]
        assert not undocumented, f"undocumented exports: {undocumented}"

    def test_version_is_semver(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_no_private_exports(self):
        assert all(
            not name.startswith("_") or name == "__version__"
            for name in repro.__all__
        )


class TestPackageQuickstart:
    def test_docstring_snippet_runs(self):
        flat = repro.Relation.from_rows(
            ["Student", "Course", "Club"],
            [("s1", "c1", "b1"), ("s1", "c2", "b1"), ("s2", "c1", "b2")],
        )
        nfr = repro.canonical_form(flat, ["Course", "Club", "Student"])
        assert nfr.to_table()

        store = repro.CanonicalNFR(flat, ["Course", "Club", "Student"])
        store.insert_values("s2", "c2", "b2")
        assert store.relation.to_table()
        assert store.is_canonical()


class TestSubpackageDocstrings:
    def test_every_module_documented(self):
        import importlib
        import pathlib
        import pkgutil

        root = pathlib.Path(repro.__file__).parent
        undocumented = []
        for info in pkgutil.walk_packages([str(root)], prefix="repro."):
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                undocumented.append(info.name)
        assert not undocumented, f"undocumented modules: {undocumented}"
