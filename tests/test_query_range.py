"""Inequality predicates end to end: lexer and parser forms, the
existential evaluation semantics, RangeIndex-backed RangeScan plans,
parameter binding, and the vacuum/rid-remap regression."""

import pytest

from repro.cli import main
from repro.planner import plan
from repro.planner import physical as P
from repro.query import Catalog, evaluate_naive, parse, run
from repro.query import ast
from repro.query.lexer import tokenize
from repro.errors import ParseError
from repro.relational import io as rio
from repro.relational.relation import Relation
from repro.relational.tuples import FlatTuple
from repro.storage.engine import NFRStore
from repro.workloads.synthetic import random_relation


@pytest.fixture
def rel():
    return Relation.from_rows(
        ["Student", "Score", "Club"],
        [
            ("s1", 55, "b1"),
            ("s2", 70, "b1"),
            ("s3", 85, "b2"),
            ("s4", 92, "b2"),
        ],
    )


@pytest.fixture
def catalog(rel):
    cat = Catalog()
    cat.register("R", rel)
    return cat


class TestLexerComparisons:
    def test_operator_tokens(self):
        kinds = [t.kind for t in tokenize("a < 1 <= 2 > b >= 3")]
        assert kinds == [
            "IDENT", "<", "NUMBER", "<=", "NUMBER", ">", "IDENT",
            ">=", "NUMBER",
        ]

    def test_no_space_needed(self):
        kinds = [t.kind for t in tokenize("A<=3")]
        assert kinds == ["IDENT", "<=", "NUMBER"]

    def test_between_is_keyword(self):
        toks = tokenize("between BETWEEN")
        assert all(t.kind == "KEYWORD" and t.value == "BETWEEN" for t in toks)


class TestParserComparisons:
    def test_comparison_forms(self):
        for op in ("<", "<=", ">", ">="):
            node = parse(f"SELECT R WHERE Score {op} 70")
            assert node == ast.Select(
                ast.Name("R"), ast.Comparison("Score", op, 70)
            )

    def test_between_form(self):
        node = parse("SELECT R WHERE Score BETWEEN 60 AND 90")
        assert node == ast.Select(
            ast.Name("R"), ast.Between("Score", 60, 90)
        )

    def test_between_binds_and_eagerly(self):
        # The first AND closes the BETWEEN; the second one conjoins.
        node = parse(
            "SELECT R WHERE Score BETWEEN 60 AND 90 AND Club CONTAINS 'b1'"
        )
        assert node == ast.Select(
            ast.Name("R"),
            ast.And(
                ast.Between("Score", 60, 90),
                ast.Contains("Club", "b1"),
            ),
        )

    def test_between_missing_and_is_error(self):
        with pytest.raises(ParseError):
            parse("SELECT R WHERE Score BETWEEN 60, 90")

    def test_comparison_needs_literal(self):
        with pytest.raises(ParseError):
            parse("SELECT R WHERE Score < <")

    def test_parameters_in_window_positions(self):
        node = parse("SELECT R WHERE Score BETWEEN ? AND :hi")
        cond = node.condition
        assert cond == ast.Between("Score", ast.Parameter(0), ast.Parameter("hi"))


class TestEvaluationSemantics:
    QUERIES = [
        "SELECT R WHERE Score < 85",
        "SELECT R WHERE Score <= 85",
        "SELECT R WHERE Score > 85",
        "SELECT R WHERE Score >= 85",
        "SELECT R WHERE Score BETWEEN 60 AND 90",
        "SELECT R WHERE Score >= 60 AND Score <= 90",
        "SELECT R WHERE Score > 55 AND Club CONTAINS 'b1'",
        "SELECT R WHERE Student >= 's2' AND Student < 's4'",
    ]

    def test_naive_results(self, catalog):
        out = evaluate_naive(parse("SELECT R WHERE Score < 85"), catalog)
        assert {t["Student"].only for t in out} == {"s1", "s2"}
        out = evaluate_naive(
            parse("SELECT R WHERE Score BETWEEN 70 AND 85"), catalog
        )
        assert {t["Student"].only for t in out} == {"s2", "s3"}

    def test_planned_matches_naive(self, catalog):
        for q in self.QUERIES:
            assert run(q, catalog) == evaluate_naive(parse(q), catalog), q

    def test_planned_matches_naive_after_analyze(self, catalog):
        run("ANALYZE R", catalog)
        for q in self.QUERIES:
            assert run(q, catalog) == evaluate_naive(parse(q), catalog), q

    @pytest.fixture
    def nested_catalog(self, catalog):
        # Nesting by Score groups rows agreeing on (Student, Club):
        # s1 carries {55, 70}, s3 carries {85, 92}.
        scores = Relation.from_rows(
            ["Student", "Score", "Club"],
            [
                ("s1", 55, "b1"),
                ("s1", 70, "b1"),
                ("s3", 85, "b2"),
                ("s3", 92, "b2"),
            ],
        )
        catalog.register("S", scores)
        run("LET N = NEST S BY (Score)", catalog)
        assert catalog.get("N").cardinality == 2
        return catalog

    def test_existential_over_set_valued_component(self, nested_catalog):
        # s1 holds {55, 70}: "some atom < 60" holds via 55 even though
        # 70 fails it; "some atom in [60, 75]" holds via 70.
        low = run("SELECT N WHERE Score < 60", nested_catalog)
        assert {t["Club"].only for t in low} == {"b1"}
        mid = run("SELECT N WHERE Score BETWEEN 60 AND 75", nested_catalog)
        assert {t["Club"].only for t in mid} == {"b1"}
        naive = evaluate_naive(
            parse("SELECT N WHERE Score BETWEEN 60 AND 75"), nested_catalog
        )
        assert mid == naive

    def test_between_needs_single_witness(self, nested_catalog):
        # On a set-valued component, BETWEEN lo AND hi is *not* the
        # conjunction of >= lo and <= hi: the conjunction may be
        # witnessed by two different atoms.
        between = run(
            "SELECT N WHERE Score BETWEEN 87 AND 89", nested_catalog
        )
        assert between.cardinality == 0
        split = run(
            "SELECT N WHERE Score >= 87 AND Score <= 89", nested_catalog
        )
        # s3 holds {85, 92}: 92 witnesses >= 87, 85 witnesses <= 89.
        assert {t["Club"].only for t in split} == {"b2"}

    def test_mixed_type_ordering(self, catalog):
        # The library total order sorts bools before numbers and
        # numbers before strings; comparisons never raise on mixed rows.
        mixed = Relation.from_rows(
            ["K", "V"], [("k1", 5), ("k2", "five"), ("k3", True)]
        )
        catalog.register("M", mixed)
        out = run("SELECT M WHERE V < 100", catalog)
        assert {t["K"].only for t in out} == {"k1", "k3"}
        assert out == evaluate_naive(parse("SELECT M WHERE V < 100"), catalog)


class TestRangeScanPlans:
    @pytest.fixture
    def big_catalog(self):
        cat = Catalog()
        cat.register(
            "Big",
            random_relation(["A", "B", "C"], 2000, domain_size=40, seed=7),
            mode="1nf",
        )
        run("ANALYZE Big", cat)
        return cat

    def test_range_scan_chosen_for_selective_window(self, big_catalog):
        text = run(
            "EXPLAIN SELECT Big WHERE A < 'a1'", big_catalog
        ).to_table()
        assert "RangeScan" in text
        assert "RangeIndex(A)" in text
        assert "range=[-inf, 'a1')" in text

    def test_range_scan_matches_heap_scan(self, big_catalog):
        for q in (
            "SELECT Big WHERE A < 'a1'",
            "SELECT Big WHERE A >= 'a38'",
            "SELECT Big WHERE A BETWEEN 'a1' AND 'a12'",
        ):
            node = parse(q)
            ranged = plan(node, big_catalog).execute()
            heap = plan(node, big_catalog, use_index=False).execute()
            assert ranged == heap, q

    def test_range_scan_reads_fewer_pages(self, big_catalog):
        node = parse("SELECT Big WHERE A < 'a1'")
        ranged = plan(node, big_catalog)
        assert isinstance(ranged.root, P.RangeScan)
        ranged.execute()
        heap = plan(node, big_catalog, use_index=False)
        heap.execute()
        assert ranged.root.total_pages_read() < heap.root.total_pages_read()
        assert ranged.root.total_index_lookups() >= 1

    def test_unselective_window_stays_on_heap(self, big_catalog):
        text = run(
            "EXPLAIN SELECT Big WHERE A >= 'a0'", big_catalog
        ).to_table()
        assert "HeapScan" in text
        assert "RangeScan" not in text

    def test_forced_index_on_pure_inequality_uses_range_scan(
        self, big_catalog
    ):
        # Regression: window conjuncts contribute no AtomIndex probe
        # atoms.  With use_index forced, the planner must not emit an
        # IndexScan with an empty probe list (its candidate set would
        # be empty) — it routes to the RangeIndex instead.
        node = parse("SELECT Big WHERE A < 'a1'")
        forced = plan(node, big_catalog, use_index=True)
        assert isinstance(forced.root, P.RangeScan)
        assert forced.execute() == evaluate_naive(node, big_catalog)

    def test_equality_conjunct_still_prefers_atom_index(self, big_catalog):
        text = run(
            "EXPLAIN SELECT Big WHERE A = 'a3' AND B < 'b2'", big_catalog
        ).to_table()
        assert "IndexScan" in text

    def test_two_sided_window_merges_on_flat_attribute(self, big_catalog):
        node = parse("SELECT Big WHERE A >= 'a1' AND A <= 'a12'")
        physical = plan(node, big_catalog)
        assert isinstance(physical.root, P.RangeScan)
        b = physical.root.bounds
        assert (b.low, b.high) == ("a1", "a12")
        assert physical.execute() == evaluate_naive(node, big_catalog)

    def test_parameterized_window_binds_per_execution(self, big_catalog):
        from repro.query.params import collect_parameters, make_binding

        node = parse("SELECT Big WHERE A < ?")
        physical = plan(node, big_catalog)
        slots = collect_parameters(node)
        for hi in ("a1", "a3"):
            physical.params.bind(make_binding(slots, [hi]))
            got = physical.execute()
            want = evaluate_naive(parse(f"SELECT Big WHERE A < '{hi}'"),
                                  big_catalog)
            assert got == want, hi

    def test_explain_analyze_shows_batch_format(self, big_catalog):
        text = run(
            "EXPLAIN ANALYZE SELECT Big WHERE A < 'a1'", big_catalog
        ).to_table()
        assert "batch=codes" in text
        assert "RangeScan" in text


class TestRangeIndexMaintenance:
    def _store(self, rel):
        return NFRStore.from_relation(rel, order=list(rel.schema.names))

    def test_vacuum_remaps_range_index_rids(self, rel):
        # Regression: vacuum moves records to new rids; the RangeIndex
        # postings must be remapped exactly like the AtomIndex ones, or
        # a post-vacuum window probe returns rids pointing at freed
        # slots.
        store = self._store(rel)
        victims = [
            FlatTuple(rel.schema, ["s1", 55, "b1"]),
            FlatTuple(rel.schema, ["s2", 70, "b1"]),
        ]
        store.delete_batch(victims)
        summary = store.vacuum()
        assert summary["pages_after"] <= summary["pages_before"]
        got = {
            t["Student"].only
            for t in store.stream_range("Score", 80, None, True, True)
        }
        assert got == {"s3", "s4"}

    def test_range_probe_open_across_vacuum_window(self, rel):
        store = self._store(rel)
        before = set(store.stream_range("Score", None, 90, True, True))
        store.delete_batch([FlatTuple(rel.schema, ["s1", 55, "b1"])])
        store.vacuum()
        after = set(store.stream_range("Score", None, 90, True, True))
        assert {t["Student"].only for t in after} == {"s2", "s3"}
        assert after < before

    def test_dml_keeps_range_index_current(self, rel):
        store = self._store(rel)
        store.insert_flat(FlatTuple(rel.schema, ["s5", 40, "b3"]))
        got = {
            t["Student"].only
            for t in store.stream_range("Score", None, 50, True, True)
        }
        assert got == {"s5"}
        store.delete_flat(FlatTuple(rel.schema, ["s5", 40, "b3"]))
        assert (
            list(store.stream_range("Score", None, 50, True, True)) == []
        )


class TestCliPlanLine:
    @pytest.fixture
    def data_file(self, tmp_path):
        rel = Relation.from_rows(
            ["Student", "Course", "Club"],
            [("s1", "c1", "b1"), ("s1", "c2", "b1"), ("s2", "c1", "b2")],
        )
        path = tmp_path / "enrollment.txt"
        path.write_text(rio.dumps(rel))
        return str(path)

    def test_query_stats_prints_plan_shape(self, data_file, capsys):
        code = main(
            [
                "query",
                "SELECT E WHERE Student < 's2'",
                "--load",
                f"E={data_file}",
                "--stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "-- plan:" in out
        assert "[codes]" in out
