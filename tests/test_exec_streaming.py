"""Tests for the streaming batch executor and lazy partial decoding.

The load-bearing invariant: for any query, accumulating
``root.iter_batches()`` produces exactly the relation that the
materializing ``execute()`` wrapper and the naive AST interpreter
produce (NFRelations are sets, so mid-stream duplicates collapse at
materialization).  On top of that, scans given a ``needed`` attribute
set must decode fewer bytes and report the saving through
``ScanStats.bytes_decoded`` and ``EXPLAIN ANALYZE``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nfr_relation import NFRelation
from repro.planner import plan
from repro.planner import physical as P
from repro.planner.physical import BATCH_SIZE
from repro.query import (
    Catalog,
    evaluate_naive,
    evaluate_stream,
    parse,
    run,
)
from repro.workloads.synthetic import random_relation

ATTRS = ["A", "B", "C"]


def _catalog(mode="nfr", rows=30, domain=5, seed=1, analyzed=False):
    catalog = Catalog()
    catalog.register(
        "R",
        random_relation(ATTRS, rows, domain_size=domain, seed=seed),
        mode=mode,
    )
    if analyzed:
        run("ANALYZE R", catalog)
    return catalog


def _collect(physical):
    tuples = []
    for batch in physical.root.iter_batches():
        assert len(batch) <= BATCH_SIZE
        tuples.extend(batch)
    return NFRelation(physical.root.output_schema(), tuples)


QUERIES = [
    "R",
    "SELECT R WHERE A CONTAINS 'a1'",
    "SELECT R WHERE A = 'a1' AND B CONTAINS 'b2'",
    "PROJECT R ON (B, A)",
    "PROJECT (SELECT R WHERE A CONTAINS 'a1') ON (A, C)",
    "UNNEST R ON B",
    "PROJECT (UNNEST (SELECT R WHERE A CONTAINS 'a1') ON A) ON (A, B)",
    "NEST R BY (A)",
    "FLATTEN R",
    "CANONICAL R ORDER (C, A, B)",
    "JOIN R, R",
    "FLATJOIN R, R",
    "UNION R, R",
    "DIFFERENCE R, R",
    "SELECT (NEST R BY (A)) WHERE B = 'b1'",
    "PROJECT (JOIN R, R) ON (A, B)",
]


class TestStreamEqualsMaterialize:
    @pytest.mark.parametrize("query", QUERIES)
    @pytest.mark.parametrize(
        "mode,analyzed",
        [("nfr", False), ("nfr", True), ("1nf", True)],
    )
    def test_batches_match_execute_and_naive(self, query, mode, analyzed):
        catalog = _catalog(mode=mode, analyzed=analyzed)
        expr = parse(query)
        streamed = _collect(plan(expr, catalog))
        materialized = plan(expr, catalog).execute()
        naive = evaluate_naive(expr, catalog)
        assert streamed == materialized == naive

    @given(
        seed=st.integers(min_value=0, max_value=40),
        mode=st.sampled_from(["nfr", "1nf"]),
        analyzed=st.booleans(),
        query=st.sampled_from(QUERIES),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_stream_equivalence(self, seed, mode, analyzed, query):
        catalog = _catalog(mode=mode, seed=seed, analyzed=analyzed)
        expr = parse(query)
        streamed = _collect(plan(expr, catalog))
        assert streamed == evaluate_naive(expr, catalog)

    def test_evaluate_stream_api(self):
        catalog = _catalog(analyzed=True)
        expr = parse("SELECT R WHERE A CONTAINS 'a1'")
        tuples = [t for batch in evaluate_stream(expr, catalog) for t in batch]
        got = NFRelation(catalog.get("R").schema, tuples)
        assert got == evaluate_naive(expr, catalog)
        assert catalog.last_io is not None
        assert catalog.last_io.page_reads >= 1

    def test_batches_bounded_on_large_input(self):
        catalog = Catalog()
        catalog.register(
            "Big",
            random_relation(ATTRS, 2000, domain_size=40, seed=3),
            mode="1nf",
        )
        run("ANALYZE Big", catalog)
        physical = plan(parse("Big"), catalog)
        sizes = [len(b) for b in physical.root.iter_batches()]
        assert sum(sizes) == 2000
        assert max(sizes) <= BATCH_SIZE
        assert len(sizes) >= 2000 // BATCH_SIZE
        assert physical.root.peak_batch_tuples <= BATCH_SIZE

    def test_interleaved_streams_do_not_double_count_io(self):
        catalog = Catalog()
        catalog.register(
            "Big",
            random_relation(ATTRS, 1500, domain_size=40, seed=11),
            mode="1nf",
        )
        run("ANALYZE Big", catalog)
        solo = plan(parse("Big"), catalog)
        for _ in solo.root.iter_batches():
            pass
        expected_pages = solo.root.actual_pages
        expected_bytes = solo.root.actual_bytes_decoded

        # Two streams over the same store, consumed alternately: each
        # must account only its own I/O, not the other's.
        a = plan(parse("Big"), catalog)
        b = plan(parse("Big"), catalog)
        it_a, it_b = a.root.iter_batches(), b.root.iter_batches()
        done_a = done_b = False
        while not (done_a and done_b):
            if not done_a:
                done_a = next(it_a, None) is None
            if not done_b:
                done_b = next(it_b, None) is None
        assert a.root.actual_pages == expected_pages
        assert b.root.actual_pages == expected_pages
        assert a.root.actual_bytes_decoded == expected_bytes
        assert b.root.actual_bytes_decoded == expected_bytes

    def test_streamed_ops_record_actuals(self):
        catalog = _catalog(analyzed=True)
        physical = plan(
            parse("SELECT R WHERE A CONTAINS 'a1'"), catalog
        )
        for _ in physical.root.iter_batches():
            pass
        # Exhausting the stream populates the analyze counters even
        # though execute() was never called.
        assert physical.root.actual_rows is not None
        assert physical.root.total_pages_read() >= 1


class TestLazyDecoding:
    def _eight_attr_catalog(self, mode="1nf"):
        catalog = Catalog()
        catalog.register(
            "R8",
            random_relation(
                list("ABCDEFGH"), 200, domain_size=10, seed=9
            ),
            mode=mode,
        )
        run("ANALYZE R8", catalog)
        return catalog

    @pytest.mark.parametrize("mode", ["1nf", "nfr"])
    def test_projection_pushdown_correct(self, mode):
        catalog = self._eight_attr_catalog(mode)
        query = "PROJECT (SELECT R8 WHERE A CONTAINS 'a1') ON (A, B)"
        assert run(query, catalog) == evaluate_naive(parse(query), catalog)

    def test_scan_receives_needed_attributes(self):
        catalog = self._eight_attr_catalog()
        physical = plan(
            parse("PROJECT (SELECT R8 WHERE A CONTAINS 'a1') ON (A, B)"),
            catalog,
            use_index=False,
        )
        assert isinstance(physical.root, P.ProjectOp)
        scan = physical.root.child
        assert isinstance(scan, P.HeapScan)
        assert scan.needed == ("A", "B")
        assert scan.output_schema().names == ("A", "B")

    def test_needed_widens_with_predicate_touches(self):
        catalog = self._eight_attr_catalog()
        physical = plan(
            parse("PROJECT (SELECT R8 WHERE C CONTAINS 'c1') ON (A, B)"),
            catalog,
            use_index=False,
        )
        scan = physical.root.child
        assert scan.needed == ("A", "B", "C")

    def test_needed_threads_through_unnest(self):
        catalog = self._eight_attr_catalog("nfr")
        physical = plan(
            parse("PROJECT (UNNEST R8 ON C) ON (A, B)"),
            catalog,
            use_index=False,
        )
        assert isinstance(physical.root, P.ProjectOp)
        unnest = physical.root.child
        assert isinstance(unnest, P.UnnestOp)
        scan = unnest.child
        assert scan.needed == ("A", "B", "C")

    def test_partial_scan_decodes_fewer_bytes(self):
        catalog = self._eight_attr_catalog()
        query = "PROJECT (SELECT R8 WHERE A CONTAINS 'a1') ON (A, B)"
        partial = plan(parse(query), catalog, use_index=False)
        partial.execute()
        partial_bytes = partial.root.total_bytes_decoded()

        full = plan(
            parse("SELECT R8 WHERE A CONTAINS 'a1'"), catalog,
            use_index=False,
        )
        full.execute()
        full_bytes = full.root.total_bytes_decoded()
        assert 0 < partial_bytes * 2 <= full_bytes

    def test_index_scan_supports_needed(self):
        catalog = self._eight_attr_catalog()
        physical = plan(
            parse("PROJECT (SELECT R8 WHERE A = 'a1') ON (A, B)"),
            catalog,
            use_index=True,
        )
        scan = physical.root.child
        assert isinstance(scan, P.IndexScan)
        assert scan.needed == ("A", "B")
        result = physical.execute()
        naive = evaluate_naive(
            parse("PROJECT (SELECT R8 WHERE A = 'a1') ON (A, B)"), catalog
        )
        assert result == naive
        assert scan.actual_bytes_decoded is not None

    def test_explain_analyze_reports_bytes_decoded(self):
        catalog = self._eight_attr_catalog()
        text = run(
            "EXPLAIN ANALYZE SELECT R8 WHERE A CONTAINS 'a1'", catalog
        ).to_table()
        assert "bytes decoded=" in text
        assert "total: pages read=" in text

    def test_scan_stats_carry_bytes_decoded(self):
        catalog = self._eight_attr_catalog()
        store = catalog.store_for("R8")
        _, full_stats = store.scan_tuples()
        assert full_stats.bytes_decoded == store.heap.used_bytes()
        _, part_stats = store.scan_tuples(needed=("A", "B"))
        assert 0 < part_stats.bytes_decoded < full_stats.bytes_decoded

    def test_mutated_store_stays_consistent_with_pushdown(self):
        catalog = self._eight_attr_catalog()
        run(
            "INSERT INTO R8 VALUES ('a1','b9','c9','d9','e9','f9','g9','h9')",
            catalog,
        )
        query = "PROJECT (SELECT R8 WHERE A CONTAINS 'a1') ON (A, B)"
        assert run(query, catalog) == evaluate_naive(parse(query), catalog)


class TestAtomInterning:
    def test_decoded_atoms_are_shared_objects(self):
        catalog = _catalog(mode="1nf", rows=50, domain=3, analyzed=True)
        store = catalog.store_for("R")
        tuples, _ = store.scan_tuples()
        seen = {}
        for t in tuples:
            for comp in t.components:
                for v in comp:
                    key = (type(v), v)
                    if key in seen:
                        assert v is seen[key]
                    else:
                        seen[key] = v

    def test_equal_components_are_hash_consed(self):
        catalog = _catalog(mode="nfr", rows=60, domain=3, analyzed=True)
        store = catalog.store_for("R")
        first, _ = store.scan_tuples()
        second, _ = store.scan_tuples()
        by_set = {}
        for t in first + second:
            for comp in t.components:
                cached = by_set.setdefault(comp.values, comp)
                assert comp is cached

    def test_interning_distinguishes_types(self):
        from repro.relational.relation import Relation

        catalog = Catalog()
        catalog.register(
            "T",
            Relation.from_rows(["A", "B"], [(1, True), (True, 1)]),
            mode="1nf",
        )
        run("ANALYZE T", catalog)
        assert run("T", catalog) == evaluate_naive(parse("T"), catalog)

    def test_hash_cons_preserves_value_types(self):
        """frozenset({1}) == frozenset({True}) == frozenset({1.0}) in
        Python, but the decode caches must not conflate them: the
        decoded atom must come back with its stored type."""
        from repro.relational.relation import Relation
        from repro.relational.tuples import FlatTuple
        from repro.storage.engine import NFRStore

        schema_rel = Relation.from_rows(
            ["A", "B"], [(True, "x"), (1, "y"), (1.0, "z")]
        )
        store = NFRStore.from_relation(schema_rel)
        decoded = {}
        for t in store.stream_scan():
            b = t["B"].only
            decoded[b] = t["A"].only
        assert type(decoded["x"]) is bool and decoded["x"] is True
        assert type(decoded["y"]) is int and decoded["y"] == 1
        assert type(decoded["z"]) is float and decoded["z"] == 1.0
        # ...and the stream path agrees with the full-decode lookup path.
        for flat in (
            FlatTuple(schema_rel.schema, [True, "x"]),
            FlatTuple(schema_rel.schema, [1, "y"]),
            FlatTuple(schema_rel.schema, [1.0, "z"]),
        ):
            present, _ = store.contains(flat)
            assert present
