"""Tests for repro.core.nfr_tuple."""

import pytest

from repro.core.nfr_tuple import NFRTuple
from repro.core.values import ValueSet
from repro.errors import NFRError, SchemaError
from repro.relational.schema import RelationSchema
from repro.relational.tuples import FlatTuple

SCHEMA = RelationSchema(["A", "B"])


@pytest.fixture
def t():
    return NFRTuple(SCHEMA, [["a1", "a2"], ["b1"]])


class TestConstruction:
    def test_components_coerced_to_value_sets(self, t):
        assert isinstance(t["A"], ValueSet)

    def test_arity_checked(self):
        with pytest.raises(SchemaError):
            NFRTuple(SCHEMA, [["a"]])

    def test_from_mapping(self):
        t = NFRTuple.from_mapping(SCHEMA, {"B": ["b"], "A": ["a"]})
        assert t["A"] == ValueSet(["a"])

    def test_from_mapping_missing_raises(self):
        with pytest.raises(SchemaError):
            NFRTuple.from_mapping(SCHEMA, {"A": ["a"]})

    def test_from_flat(self):
        flat = FlatTuple(SCHEMA, ["a", "b"])
        t = NFRTuple.from_flat(flat)
        assert t.is_all_singleton()
        assert t.to_flat() == flat


class TestExpansion:
    """The §3.1 semantics: [A(a1,a2) B(b1)] means {(a1,b1), (a2,b1)}."""

    def test_flat_count(self, t):
        assert t.flat_count == 2

    def test_flats_enumerated(self, t):
        flats = {f.values for f in t.flats()}
        assert flats == {("a1", "b1"), ("a2", "b1")}

    def test_paper_exact_example(self):
        # "[A(a1, a2) B(b1)] means the set of two tuples [A(a1) B(b1)]
        # and [A(a2) B(b1)]"
        t = NFRTuple(SCHEMA, [["a1", "a2"], ["b1"]])
        rendered = sorted(str(f) for f in t.flats())
        assert rendered == ["[A(a1) B(b1)]", "[A(a2) B(b1)]"]

    def test_contains_flat(self, t):
        assert t.contains_flat(FlatTuple(SCHEMA, ["a1", "b1"]))
        assert not t.contains_flat(FlatTuple(SCHEMA, ["a1", "bX"]))

    def test_contains_flat_schema_mismatch(self, t):
        other = FlatTuple(RelationSchema(["X", "Y"]), ["a1", "b1"])
        assert not t.contains_flat(other)

    def test_to_flat_requires_singletons(self, t):
        with pytest.raises(NFRError):
            t.to_flat()


class TestStructuralRelations:
    def test_agrees_with(self, t):
        other = NFRTuple(SCHEMA, [["a1", "a2"], ["bX"]])
        assert t.agrees_with(other, ["A"])
        assert not t.agrees_with(other, ["B"])

    def test_differs_only_on(self, t):
        other = NFRTuple(SCHEMA, [["a1", "a2"], ["bX"]])
        assert t.differs_only_on(other, "B")
        assert not t.differs_only_on(other, "A")

    def test_covers(self, t):
        smaller = NFRTuple(SCHEMA, [["a1"], ["b1"]])
        assert t.covers(smaller)
        assert not smaller.covers(t)


class TestDerivation:
    def test_with_component(self, t):
        out = t.with_component("B", ["b1", "b2"])
        assert out["B"] == ValueSet(["b1", "b2"])
        assert t["B"] == ValueSet(["b1"])  # original untouched

    def test_project(self, t):
        assert t.project(["A"]).schema.names == ("A",)

    def test_reorder(self, t):
        out = t.reorder(["B", "A"])
        assert out.schema.names == ("B", "A")
        assert out["A"] == t["A"]

    def test_rename(self, t):
        assert t.rename({"A": "X"})["X"] == t["A"]


class TestRendering:
    def test_paper_notation(self, t):
        assert t.render() == "[A(a1, a2) B(b1)]"

    def test_hashable(self):
        a = NFRTuple(SCHEMA, [["a1", "a2"], ["b1"]])
        b = NFRTuple(SCHEMA, [["a2", "a1"], ["b1"]])
        assert a == b
        assert len({a, b}) == 1

    def test_sort_key_total_order(self, t):
        other = NFRTuple(SCHEMA, [["a1"], ["b1", "b2"]])
        assert sorted([t, other], key=lambda x: x.sort_key()) == sorted(
            [other, t], key=lambda x: x.sort_key()
        )
