"""Tests for repro.core.values (ValueSet)."""

import pytest

from repro.core.values import ValueSet
from repro.errors import EmptyComponentError, NFRError


class TestConstruction:
    def test_from_iterable(self):
        assert len(ValueSet(["a", "b"])) == 2

    def test_string_is_one_value_not_chars(self):
        vs = ValueSet("c1")
        assert len(vs) == 1
        assert "c1" in vs

    def test_single(self):
        assert ValueSet.single(5).only == 5

    def test_empty_rejected(self):
        with pytest.raises(EmptyComponentError):
            ValueSet([])

    def test_non_atomic_member_rejected(self):
        with pytest.raises(NFRError):
            ValueSet([["nested"]])

    def test_bare_int_rejected_with_hint(self):
        with pytest.raises(NFRError, match="single"):
            ValueSet(5)

    def test_from_valueset_is_identity(self):
        vs = ValueSet(["a"])
        assert ValueSet(vs) == vs

    def test_duplicates_collapse(self):
        assert len(ValueSet(["a", "a"])) == 1


class TestSetOps:
    def test_union(self):
        assert ValueSet(["a"]).union(ValueSet(["b"])) == ValueSet(["a", "b"])

    def test_union_with_iterable(self):
        assert ValueSet(["a"]).union(["b"]) == ValueSet(["a", "b"])

    def test_without(self):
        assert ValueSet(["a", "b"]).without("a") == ValueSet(["b"])

    def test_without_absent_raises(self):
        with pytest.raises(NFRError):
            ValueSet(["a"]).without("z")

    def test_without_last_value_raises(self):
        with pytest.raises(EmptyComponentError):
            ValueSet(["a"]).without("a")

    def test_difference(self):
        assert ValueSet(["a", "b", "c"]).difference(["a"]) == ValueSet(
            ["b", "c"]
        )

    def test_difference_to_empty_raises(self):
        with pytest.raises(EmptyComponentError):
            ValueSet(["a"]).difference(["a"])

    def test_subset_superset_disjoint(self):
        small, big = ValueSet(["a"]), ValueSet(["a", "b"])
        assert small.issubset(big)
        assert big.issuperset(small)
        assert ValueSet(["x"]).isdisjoint(big)


class TestSingleton:
    def test_is_singleton(self):
        assert ValueSet(["a"]).is_singleton
        assert not ValueSet(["a", "b"]).is_singleton

    def test_only_on_non_singleton_raises(self):
        with pytest.raises(NFRError):
            ValueSet(["a", "b"]).only


class TestRendering:
    def test_render_sorted(self):
        assert ValueSet(["b", "a"]).render() == "a, b"

    def test_render_mixed_types(self):
        assert ValueSet(["x", 1]).render() == "1, x"

    def test_str(self):
        assert str(ValueSet(["a"])) == "{a}"

    def test_hashable_value_object(self):
        assert len({ValueSet(["a", "b"]), ValueSet(["b", "a"])}) == 1


class TestFastPath:
    """The internal ``_from_frozenset`` construction path (used by
    nest/union/decode) must not re-validate members; the public
    constructor must keep validating."""

    def _count_validations(self, monkeypatch):
        import repro.core.values as values_mod

        calls = {"n": 0}
        real = values_mod.is_atomic

        def counting(v):
            calls["n"] += 1
            return real(v)

        monkeypatch.setattr(values_mod, "is_atomic", counting)
        return calls

    def test_union_of_valuesets_skips_validation(self, monkeypatch):
        a = ValueSet(["a", "b"])
        b = ValueSet(["b", "c"])
        expected = ValueSet(["a", "b", "c"])
        calls = self._count_validations(monkeypatch)
        merged = a.union(b)
        assert merged == expected
        assert calls["n"] == 0

    def test_copy_constructor_skips_validation(self, monkeypatch):
        a = ValueSet(["a", "b"])
        calls = self._count_validations(monkeypatch)
        copied = ValueSet(a)
        assert copied == a
        assert calls["n"] == 0

    def test_without_and_difference_skip_validation(self, monkeypatch):
        a = ValueSet(["a", "b", "c"])
        calls = self._count_validations(monkeypatch)
        assert a.without("c") == a.difference(["c", "z"])
        assert calls["n"] == 0

    def test_nest_pipeline_avoids_revalidation(self, monkeypatch):
        """Micro-benchmark assertion: nesting validated tuples performs
        zero per-member re-validations in the ValueSet layer."""
        from repro.core.nest import nest
        from repro.core.nfr_relation import NFRelation

        relation = NFRelation.from_components(
            ["A", "B"],
            [(["a1"], ["b1"]), (["a2"], ["b1"]), (["a3"], ["b2"])],
        )
        calls = self._count_validations(monkeypatch)
        nested = nest(relation, "A")
        assert nested.cardinality == 2
        assert calls["n"] == 0

    def test_public_constructor_still_validates(self):
        with pytest.raises(NFRError):
            ValueSet(["ok", ["nested"]])
        with pytest.raises(NFRError):
            ValueSet.single(["nested"])

    def test_from_frozenset_rejects_empty(self):
        from repro.errors import EmptyComponentError

        with pytest.raises(EmptyComponentError):
            ValueSet._from_frozenset(frozenset())
