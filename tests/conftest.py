"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema


@pytest.fixture
def ab_schema() -> RelationSchema:
    return RelationSchema(["A", "B"])


@pytest.fixture
def abc_schema() -> RelationSchema:
    return RelationSchema(["A", "B", "C"])


@pytest.fixture
def small_ab(ab_schema) -> Relation:
    """The Example 1 relation: 4 tuples over {A, B}."""
    return Relation.from_rows(
        ab_schema,
        [("a1", "b1"), ("a2", "b1"), ("a2", "b2"), ("a3", "b2")],
    )


@pytest.fixture
def product_abc(abc_schema) -> Relation:
    """A 2x2x2 product block: maximally compressible."""
    rows = [
        (a, b, c)
        for a in ("a1", "a2")
        for b in ("b1", "b2")
        for c in ("c1", "c2")
    ]
    return Relation.from_rows(abc_schema, rows)
