"""Tests for repro.nf2_algebra.operators."""

import pytest

from repro.core.canonical import canonical_form
from repro.core.nfr_relation import NFRelation
from repro.errors import AlgebraError
from repro.nf2_algebra.operators import (
    Difference,
    EvalStats,
    Join,
    Nest,
    Project,
    Scan,
    Select,
    Union,
    Unnest,
    component_eq,
    conjunction,
    contains,
)
from repro.relational.relation import Relation


@pytest.fixture
def rel():
    return Relation.from_rows(
        ["Student", "Course", "Club"],
        [
            ("s1", "c1", "b1"),
            ("s1", "c2", "b1"),
            ("s2", "c1", "b2"),
        ],
    )


@pytest.fixture
def scan(rel):
    return Scan(NFRelation.from_1nf(rel), name="E")


class TestPredicates:
    def test_contains_is_atom_stable(self):
        p = contains("A", "x")
        assert p.atom_stable
        assert p.touches == {"A"}

    def test_component_eq_not_atom_stable(self):
        p = component_eq("A", ["x", "y"])
        assert not p.atom_stable

    def test_conjunction_combines(self):
        p = conjunction(contains("A", "x"), contains("B", "y"))
        assert p.touches == {"A", "B"}
        assert p.atom_stable

    def test_conjunction_atom_stability_degrades(self):
        p = conjunction(contains("A", "x"), component_eq("B", ["y"]))
        assert not p.atom_stable


class TestEvaluation:
    def test_scan(self, scan, rel):
        assert scan.evaluate().to_1nf() == rel

    def test_select(self, scan):
        out = Select(scan, contains("Student", "s1")).evaluate()
        assert out.flat_count == 2

    def test_project(self, scan):
        out = Project(scan, ("Student",)).evaluate()
        assert out.cardinality == 2

    def test_nest_unnest(self, scan, rel):
        nested = Nest(scan, "Course")
        assert nested.evaluate().to_1nf() == rel
        back = Unnest(nested, "Course")
        assert back.evaluate() == NFRelation.from_1nf(rel)

    def test_join(self, scan):
        left = Project(scan, ("Student", "Course"))
        right = Project(scan, ("Student", "Club"))
        out = Join(left, right).evaluate()
        assert set(out.schema.names) == {"Student", "Course", "Club"}

    def test_union_and_difference(self, scan, rel):
        u = Union(scan, scan).evaluate()
        assert u.to_1nf() == rel
        d = Difference(scan, scan).evaluate()
        assert d.cardinality == 0

    def test_union_incompatible_raises(self, scan):
        other = Scan(
            NFRelation.from_components(["X"], [(["x"],)]), name="X"
        )
        with pytest.raises(AlgebraError):
            Union(scan, other).evaluate()

    def test_canonical_pipeline(self, scan, rel):
        tree = Nest(Nest(Nest(scan, "Course"), "Club"), "Student")
        assert tree.evaluate() == canonical_form(
            rel, ["Course", "Club", "Student"]
        )


class TestStats:
    def test_stats_count_materialised_tuples(self, scan):
        stats = EvalStats()
        Select(scan, contains("Student", "s1")).evaluate(stats)
        # scan materialises 3, select materialises 2
        assert stats.tuples_materialised == 5
        assert stats.operator_applications == 2


class TestExplain:
    def test_explain_tree(self, scan):
        tree = Select(Nest(scan, "Course"), contains("Club", "b1"))
        text = tree.explain()
        lines = text.splitlines()
        assert lines[0].startswith("Select")
        assert lines[1].strip().startswith("Nest")
        assert lines[2].strip().startswith("Scan")
