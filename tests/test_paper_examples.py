"""End-to-end verification of every figure and example in the paper.

Each test class corresponds to a printed artifact; assertions are the
paper's own statements, executed.
"""

from repro.core.canonical import all_canonical_forms, canonical_form
from repro.core.composition import compose, decompose
from repro.core.fixedness import is_fixed
from repro.core.irreducible import (
    enumerate_irreducible_forms,
    is_irreducible,
)
from repro.core.nfr_relation import NFRelation
from repro.core.update import CanonicalNFR
from repro.workloads import paper_examples as pe


class TestFig1Fig2:
    """"Assume a student s1 stops taking a course c1. ... This
    corresponds to removing the value c1 of the first tuple in R1, and
    to removing the first tuple in R2 and adding ({s2,s3},{c1,c2},t1)
    and (s1,c2,t1) to R2."
    """

    def test_r1_and_r2_carry_the_stated_information(self):
        assert pe.FIG1_R1.flat_count == 9  # 3 students x 3 courses
        assert pe.FIG1_R2.flat_count == 9

    def test_fig1_r1_satisfies_the_mvd(self):
        assert pe.FIG1_MVD.holds_in(pe.FIG1_R1.to_1nf())

    def test_fig2_r1_is_fig1_r1_minus_the_deleted_flats(self):
        expected = pe.FIG1_R1.to_1nf()
        for f in pe.fig1_deleted_flats_r1():
            expected = expected.without_tuple(f)
        assert pe.FIG2_R1.to_1nf() == expected

    def test_fig2_r2_is_fig1_r2_minus_the_deleted_flats(self):
        expected = pe.FIG1_R2.to_1nf()
        for f in pe.fig1_deleted_flats_r2():
            expected = expected.without_tuple(f)
        assert pe.FIG2_R2.to_1nf() == expected

    def test_r1_update_is_a_single_component_edit(self):
        """In R1 the deletion touches one tuple: drop c1 from s1's
        Course component."""
        [target] = [
            t for t in pe.FIG1_R1 if "s1" in t["Student"]
        ]
        edited = target.with_component(
            "Course", target["Course"].without("c1")
        )
        updated = pe.FIG1_R1.replace_tuples([target], [edited])
        assert updated == pe.FIG2_R1

    def test_r2_update_splits_and_recombines(self):
        """In R2 the same logical deletion removes one tuple and adds
        two — reproduced with Def. 1/2 operations only."""
        [first] = [
            t
            for t in pe.FIG1_R2
            if t["Course"].values == frozenset({"c1", "c2"})
        ]
        # u_Student(s1): split s1 out of the first tuple
        keep, s1_part = decompose(first, "Student", "s1")
        # u_Course(c1) on the s1 piece: isolate (s1, c1, t1)
        s1_keep, _s1_c1 = decompose(s1_part, "Course", "c1")
        updated = pe.FIG1_R2.replace_tuples([first], [keep, s1_keep])
        assert updated == pe.FIG2_R2

    def test_fig2_r2_is_irreducible_but_not_canonical(self):
        assert is_irreducible(pe.FIG2_R2)
        flat = pe.FIG2_R2.to_1nf()
        assert all(
            canonical_form(flat, order) != pe.FIG2_R2
            for order in all_canonical_forms(flat)
        )

    def test_canonical_maintenance_handles_the_same_update(self):
        """Running the §4 deletion on canonical forms of R1*/R2* keeps
        them canonical and removes exactly the (s1, c1, *) flats."""
        for fig1, deleted in (
            (pe.FIG1_R1, pe.fig1_deleted_flats_r1()),
            (pe.FIG1_R2, pe.fig1_deleted_flats_r2()),
        ):
            order = list(fig1.schema.names)
            store = CanonicalNFR(fig1.to_1nf(), order, validate=True)
            for f in deleted:
                store.delete_flat(f)
            expected = fig1.to_1nf()
            for f in deleted:
                expected = expected.without_tuple(f)
            assert store.to_1nf() == expected


class TestExample1:
    def test_both_printed_forms_are_reachable_and_irreducible(self):
        forms = enumerate_irreducible_forms(pe.EXAMPLE1_R)
        assert pe.EXAMPLE1_R1 in forms
        assert pe.EXAMPLE1_R2 in forms

    def test_r1_via_va_twice(self):
        lifted = NFRelation.from_1nf(pe.EXAMPLE1_R)
        tuples = {t.render(): t for t in lifted}
        r1 = tuples["[A(a1) B(b1)]"]
        r2 = tuples["[A(a2) B(b1)]"]
        r3 = tuples["[A(a2) B(b2)]"]
        r4 = tuples["[A(a3) B(b2)]"]
        merged = lifted.replace_tuples(
            [r1, r2, r3, r4],
            [compose(r1, r2, "A"), compose(r3, r4, "A")],
        )
        assert merged == pe.EXAMPLE1_R1

    def test_r2_via_vb_once(self):
        lifted = NFRelation.from_1nf(pe.EXAMPLE1_R)
        tuples = {t.render(): t for t in lifted}
        merged = lifted.replace_tuples(
            [tuples["[A(a2) B(b1)]"], tuples["[A(a2) B(b2)]"]],
            [compose(tuples["[A(a2) B(b1)]"], tuples["[A(a2) B(b2)]"], "B")],
        )
        assert merged == pe.EXAMPLE1_R2

    def test_tuple_counts_match_paper(self):
        assert pe.EXAMPLE1_R1.cardinality == 2
        assert pe.EXAMPLE1_R2.cardinality == 3


class TestExample2:
    def test_r4_is_irreducible_with_three_tuples(self):
        assert pe.EXAMPLE2_R4.cardinality == 3
        assert is_irreducible(pe.EXAMPLE2_R4)
        assert pe.EXAMPLE2_R4.to_1nf() == pe.EXAMPLE2_R3

    def test_r4_not_derivable_by_nest_operations(self):
        forms = set(all_canonical_forms(pe.EXAMPLE2_R3).values())
        assert pe.EXAMPLE2_R4 not in forms

    def test_every_canonical_form_has_four_tuples(self):
        """Paper: "Thinking over the symmetricity of R3, every canonical
        form contains 4 tuples." """
        for form in all_canonical_forms(pe.EXAMPLE2_R3).values():
            assert form.cardinality == 4

    def test_printed_rb_is_a_canonical_form(self):
        assert (
            canonical_form(pe.EXAMPLE2_R3, ["A", "B", "C"]) == pe.EXAMPLE2_RB
        )


class TestExample3:
    def test_mvd_holds(self):
        assert pe.EXAMPLE3_MVD.holds_in(pe.EXAMPLE3_R5)

    def test_r7_and_r8_are_irreducible_equivalents(self):
        for form in (pe.EXAMPLE3_R7, pe.EXAMPLE3_R8):
            assert is_irreducible(form)
            assert form.to_1nf() == pe.EXAMPLE3_R5

    def test_r7_fixed_on_a_r8_not(self):
        assert is_fixed(pe.EXAMPLE3_R7, ["A"])
        assert not is_fixed(pe.EXAMPLE3_R8, ["A"])

    def test_both_reachable_by_exhaustive_reduction(self):
        forms = enumerate_irreducible_forms(pe.EXAMPLE3_R5)
        assert pe.EXAMPLE3_R7 in forms
        assert pe.EXAMPLE3_R8 in forms


class TestSection32CompositionExample:
    def test_t1_t2_compose_to_t3(self):
        assert (
            compose(pe.COMPOSITION_T1, pe.COMPOSITION_T2, "B")
            == pe.COMPOSITION_T3
        )
