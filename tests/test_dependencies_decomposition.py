"""Tests for repro.dependencies.decomposition (BCNF / 4NF)."""

from repro.dependencies.chase import is_lossless_join
from repro.dependencies.decomposition import (
    apply_decomposition,
    decompose_4nf,
    decompose_bcnf,
    is_lossless_on_instance,
    rejoin,
)
from repro.dependencies.fd import FunctionalDependency as FD
from repro.dependencies.mvd import MultivaluedDependency as MVD
from repro.dependencies.normalforms import is_bcnf
from repro.dependencies.closure import project_fds
from repro.relational.relation import Relation


class TestBcnfDecomposition:
    def test_transitive_chain_splits(self):
        fds = [FD.parse("A -> B"), FD.parse("B -> C")]
        result = decompose_bcnf(["A", "B", "C"], fds)
        assert sorted(result.as_sorted_lists()) == [["A", "B"], ["B", "C"]]

    def test_each_component_is_bcnf(self):
        fds = [FD.parse("City, Street -> Zip"), FD.parse("Zip -> City")]
        result = decompose_bcnf(["City", "Street", "Zip"], fds)
        for schema in result.schemas:
            assert is_bcnf(sorted(schema), project_fds(fds, schema))

    def test_decomposition_is_lossless(self):
        fds = [FD.parse("A -> B"), FD.parse("B -> C")]
        result = decompose_bcnf(["A", "B", "C"], fds)
        assert is_lossless_join(
            ("A", "B", "C"), [sorted(s) for s in result.schemas], fds
        )

    def test_already_bcnf_untouched(self):
        fds = [FD.parse("A -> B")]
        result = decompose_bcnf(["A", "B"], fds)
        assert result.as_sorted_lists() == [["A", "B"]]
        assert not result.steps

    def test_steps_recorded(self):
        fds = [FD.parse("A -> B"), FD.parse("B -> C")]
        result = decompose_bcnf(["A", "B", "C"], fds)
        assert len(result.steps) >= 1


class Test4nfDecomposition:
    def test_mvd_splits_fig1_style_schema(self):
        deps = [MVD(["Student"], ["Course"])]
        result = decompose_4nf(["Student", "Course", "Club"], deps)
        assert sorted(result.as_sorted_lists()) == [
            ["Club", "Student"],
            ["Course", "Student"],
        ]

    def test_key_mvd_does_not_split(self):
        deps = [FD.parse("A -> B, C"), MVD(["A"], ["B"])]
        result = decompose_4nf(["A", "B", "C"], deps)
        assert result.as_sorted_lists() == [["A", "B", "C"]]

    def test_fd_violations_also_split(self):
        deps = [FD.parse("B -> C")]
        result = decompose_4nf(["A", "B", "C"], deps)
        assert sorted(result.as_sorted_lists()) == [["A", "B"], ["B", "C"]]


class TestInstanceLevel:
    def test_rejoin_recovers_instance_with_mvd(self):
        rows = [
            ("s1", c, b)
            for c in ("c1", "c2", "c3")
            for b in ("b1", "b2")
        ]
        r = Relation.from_rows(["Student", "Course", "Club"], rows)
        schemas = [["Student", "Course"], ["Student", "Club"]]
        assert is_lossless_on_instance(r, schemas)

    def test_lossy_decomposition_detected_on_instance(self):
        r = Relation.from_rows(
            ["A", "B", "C"],
            [("a1", "b1", "c1"), ("a2", "b1", "c2")],
        )
        # splitting on B loses which A went with which C
        assert not is_lossless_on_instance(r, [["A", "B"], ["B", "C"]])

    def test_apply_and_rejoin_shapes(self):
        r = Relation.from_rows(["A", "B", "C"], [("a", "b", "c")])
        comps = apply_decomposition(r, [["A", "B"], ["B", "C"]])
        assert [c.schema.names for c in comps] == [("A", "B"), ("B", "C")]
        joined = rejoin(comps)
        assert set(joined.schema.names) == {"A", "B", "C"}
