"""Tests for the FileManager and the BufferPool.

The contract being guarded: page images round-trip through the file at
exactly PAGE_SIZE bytes, the pool serves warm pages with zero disk
reads (the BUF-HIT regime), pinned frames are never evicted, dirty
frames write back on eviction, and the no-steal gate keeps gated pages
out of the file.
"""

import pytest

from repro.errors import StorageError
from repro.storage.bufferpool import BufferPool, MemoryPager, PageAllocator
from repro.storage.filemgr import FileManager
from repro.storage.pages import PAGE_SIZE, Page


@pytest.fixture
def filemgr(tmp_path):
    fm = FileManager(tmp_path / "pool.db")
    yield fm
    fm.close()


class TestFileManager:
    def test_write_read_round_trip(self, filemgr):
        page = Page(3)
        page.insert(b"hello disk")
        filemgr.write_page(3, page.to_bytes())
        back = Page.from_bytes(filemgr.read_page(3), 3)
        assert back.records() == page.records()

    def test_read_past_eof_is_zero_image(self, filemgr):
        data = filemgr.read_page(99)
        assert data == b"\x00" * PAGE_SIZE
        assert Page.from_bytes(data, 99).slot_count == 0

    def test_partial_page_rejected(self, filemgr):
        with pytest.raises(StorageError):
            filemgr.write_page(0, b"short")

    def test_counters(self, filemgr):
        filemgr.write_page(0, Page(0).to_bytes())
        filemgr.read_page(0)
        filemgr.sync()
        assert filemgr.stats.writes == 1
        assert filemgr.stats.reads == 1
        assert filemgr.stats.syncs == 1

    def test_pages_at_offsets(self, filemgr):
        for pid in (0, 1, 5):
            p = Page(pid)
            p.insert(b"p%d" % pid)
            filemgr.write_page(pid, p.to_bytes())
        assert filemgr.num_pages == 6
        assert Page.from_bytes(filemgr.read_page(5), 5).read(0) == b"p5"

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "x.db"
        fm = FileManager(path)
        p = Page(1)
        p.insert(b"survivor")
        fm.write_page(1, p.to_bytes())
        fm.sync()
        fm.close()
        fm2 = FileManager(path)
        assert Page.from_bytes(fm2.read_page(1), 1).read(0) == b"survivor"
        fm2.close()


class TestPageAllocator:
    def test_fresh_then_freed_lowest_first(self):
        a = PageAllocator()
        assert [a.allocate() for _ in range(3)] == [1, 2, 3]
        a.free(2)
        a.free(1)
        assert a.allocate() == 1
        assert a.allocate() == 2
        assert a.allocate() == 4

    def test_state_round_trip(self):
        a = PageAllocator()
        for _ in range(5):
            a.allocate()
        a.free(3)
        b = PageAllocator.from_state(a.state())
        assert b.allocate() == 3
        assert b.allocate() == 6

    def test_sweep_frees_unreferenced(self):
        a = PageAllocator()
        for _ in range(6):
            a.allocate()
        a.sweep(used={1, 4})
        assert a.free_ids == [2, 3, 5, 6]

    def test_reserve_removes_from_free(self):
        a = PageAllocator(next_id=4, free=[1, 2, 3])
        a.reserve([2, 9])
        assert a.free_ids == [1, 3]
        assert a.allocate() == 1
        a.reserve([])
        assert a.next_id == 10


class TestBufferPool:
    def test_warm_fetch_reads_disk_zero_times(self, filemgr):
        pool = BufferPool(filemgr, capacity=4)
        page = pool.allocate()
        page.insert(b"hot")
        pid = page.page_id
        pool.release(pid, dirty=True)
        before = filemgr.stats.reads
        for _ in range(10):
            pool.fetch(pid)
            pool.release(pid)
        assert filemgr.stats.reads == before  # all hits
        assert pool.stats.hits >= 10

    def test_eviction_writes_back_dirty(self, filemgr):
        pool = BufferPool(filemgr, capacity=2)
        pids = []
        for i in range(4):  # exceeds capacity: two evictions
            page = pool.allocate()
            page.insert(b"v%d" % i)
            pids.append(page.page_id)
            pool.release(page.page_id, dirty=True)
        assert pool.stats.evictions >= 2
        assert pool.stats.writebacks >= 2
        # evicted pages read back with their contents intact
        for i, pid in enumerate(pids):
            page = pool.fetch(pid)
            assert page.read(0) == b"v%d" % i
            pool.release(pid)

    def test_pinned_frames_never_evicted(self, filemgr):
        pool = BufferPool(filemgr, capacity=2)
        a = pool.allocate()  # stays pinned
        b = pool.allocate()
        pool.release(b.page_id, dirty=True)
        c = pool.allocate()  # must evict b, not pinned a
        pool.release(c.page_id, dirty=True)
        assert pool.resident(a.page_id)
        assert pool.stats.overflows == 0 or pool.frame_count <= 3

    def test_all_pinned_overflows_instead_of_deadlock(self, filemgr):
        pool = BufferPool(filemgr, capacity=2)
        pages = [pool.allocate() for _ in range(4)]  # all pinned
        assert pool.frame_count == 4
        assert pool.stats.overflows >= 2
        for p in pages:
            pool.release(p.page_id, dirty=True)

    def test_evict_gate_blocks_dirty_writeback(self, filemgr):
        gated: set[int] = set()
        pool = BufferPool(
            filemgr, capacity=2, evict_gate=lambda pid: pid not in gated
        )
        a = pool.allocate()
        a.insert(b"uncommitted")
        gated.add(a.page_id)
        pool.release(a.page_id, dirty=True)
        b = pool.allocate()
        pool.release(b.page_id, dirty=True)
        pool.allocate()  # needs room: must not write back the gated page
        assert pool.resident(a.page_id)
        raw = filemgr.read_page(a.page_id)
        assert raw == b"\x00" * PAGE_SIZE  # never reached the file

    def test_flush_all_clears_dirty(self, filemgr):
        pool = BufferPool(filemgr, capacity=8)
        for _ in range(3):
            page = pool.allocate()
            page.insert(b"d")
            pool.release(page.page_id, dirty=True)
        assert pool.flush_all() == 3
        assert pool.dirty_ids() == []
        assert filemgr.stats.writes == 3

    def test_release_unpinned_rejected(self, filemgr):
        pool = BufferPool(filemgr, capacity=2)
        page = pool.allocate()
        pool.release(page.page_id)
        with pytest.raises(StorageError):
            pool.release(page.page_id)

    def test_free_returns_id_to_allocator(self, filemgr):
        pool = BufferPool(filemgr, capacity=4)
        page = pool.allocate()
        pool.release(page.page_id)
        pool.free(page.page_id)
        assert not pool.resident(page.page_id)
        assert pool.allocator.free_ids == [page.page_id]


class TestMemoryPager:
    def test_same_surface_no_disk(self):
        pager = MemoryPager()
        page = pager.allocate()
        page.insert(b"mem")
        pager.release(page.page_id, dirty=True)
        assert pager.fetch(page.page_id).read(0) == b"mem"
        assert pager.disk_reads == 0
        assert pager.disk_writes == 0
        assert not pager.is_durable

    def test_fetch_unknown_raises(self):
        with pytest.raises(StorageError):
            MemoryPager().fetch(5)
