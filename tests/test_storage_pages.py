"""Tests for repro.storage.pages and heap."""

import random

import pytest

from repro.errors import PageOverflowError, RecordNotFoundError, StorageError
from repro.storage.heap import HeapFile
from repro.storage.pages import HEADER_SIZE, PAGE_SIZE, Page


class TestPage:
    def test_insert_and_read(self):
        p = Page(0)
        slot = p.insert(b"hello")
        assert p.read(slot) == b"hello"

    def test_free_space_decreases(self):
        p = Page(0)
        before = p.free_space
        p.insert(b"x" * 100)
        assert p.free_space == before - 108  # record + slot cost

    def test_overflow_raises(self):
        p = Page(0)
        with pytest.raises(PageOverflowError):
            p.insert(b"x" * PAGE_SIZE)

    def test_fits_predicate(self):
        p = Page(0)
        assert p.fits(b"x" * 100)
        assert not p.fits(b"x" * PAGE_SIZE)

    def test_delete_tombstones(self):
        p = Page(0)
        slot = p.insert(b"gone")
        p.delete(slot)
        with pytest.raises(RecordNotFoundError):
            p.read(slot)
        assert p.live_count == 0
        assert p.slot_count == 1

    def test_delete_reclaims_body_space(self):
        p = Page(0)
        slot = p.insert(b"x" * 100)
        free_after_insert = p.free_space
        p.delete(slot)
        assert p.free_space == free_after_insert + 100

    def test_records_iterates_live_only(self):
        p = Page(0)
        a = p.insert(b"a")
        p.insert(b"b")
        p.delete(a)
        assert [r for _, r in p.records()] == [b"b"]

    def test_bad_slot_raises(self):
        with pytest.raises(RecordNotFoundError):
            Page(0).read(3)


class TestHeapFile:
    def test_insert_allocates_pages(self):
        h = HeapFile()
        big = b"x" * 2000
        for _ in range(5):
            h.insert(big)
        assert h.page_count >= 3  # two 2000-byte records per 4K page

    def test_read_by_rid(self):
        h = HeapFile()
        rid = h.insert(b"data")
        assert h.read(rid) == b"data"

    def test_record_larger_than_page_rejected(self):
        h = HeapFile()
        with pytest.raises(PageOverflowError):
            h.insert(b"x" * (PAGE_SIZE + 1))

    def test_scan_counts_pages_and_records(self):
        h = HeapFile()
        for i in range(10):
            h.insert(f"rec{i}".encode())
        h.stats.reset()
        records = list(h.scan())
        assert len(records) == 10
        assert h.stats.page_reads == h.page_count
        assert h.stats.records_visited == 10

    def test_delete_removes_from_scan(self):
        h = HeapFile()
        rid = h.insert(b"dead")
        h.insert(b"alive")
        h.delete(rid)
        assert [r for _, r in h.scan()] == [b"alive"]
        assert h.record_count == 1

    def test_read_many_charges_distinct_pages_once(self):
        h = HeapFile()
        rids = [h.insert(b"r%d" % i) for i in range(5)]
        h.stats.reset()
        out = h.read_many(rids)
        assert len(out) == 5
        assert h.stats.page_reads == 1  # all on one page

    def test_used_and_allocated_bytes(self):
        h = HeapFile()
        h.insert(b"x" * 10)
        assert h.used_bytes() == 10
        assert h.allocated_bytes() == PAGE_SIZE


class TestIterRecords:
    def test_generator_matches_records_list(self):
        import types

        p = Page(0)
        for i in range(5):
            p.insert(b"r%d" % i)
        p.delete(1)
        p.delete(3)
        it = p.iter_records()
        assert isinstance(it, types.GeneratorType)
        assert list(it) == p.records()
        assert [s for s, _ in p.iter_records()] == [0, 2, 4]

    def test_delete_returns_record(self):
        p = Page(0)
        slot = p.insert(b"payload")
        assert p.delete(slot) == b"payload"


class TestTombstoneReuse:
    def test_insert_reuses_tombstoned_slot(self):
        p = Page(0)
        a = p.insert(b"aaa")
        p.insert(b"bbb")
        p.delete(a)
        assert p.insert(b"ccc") == a  # slot 0 reused, not slot 2
        assert p.slot_count == 2

    def test_lowest_tombstone_reused_first(self):
        p = Page(0)
        slots = [p.insert(b"r%d" % i) for i in range(5)]
        p.delete(slots[3])
        p.delete(slots[1])
        assert p.insert(b"x") == 1
        assert p.insert(b"y") == 3
        assert p.insert(b"z") == 5

    def test_slot_directory_bounded_under_churn(self):
        """Insert/delete churn must not grow the directory unboundedly
        (the seed appended a fresh slot per insert forever)."""
        p = Page(0)
        slot = p.insert(b"v" * 64)
        for _ in range(500):
            p.delete(slot)
            slot = p.insert(b"v" * 64)
        assert p.slot_count == 1

    def test_reuse_charges_no_slot_cost(self):
        p = Page(0)
        slot = p.insert(b"x" * 100)
        p.delete(slot)
        free_before = p.free_space
        p.insert(b"y" * 100)
        assert p.free_space == free_before - 100  # record only, no slot


class TestSerialization:
    def test_round_trip_is_exactly_page_size(self):
        p = Page(7)
        for i in range(10):
            p.insert(b"record-%03d" % i)
        image = p.to_bytes()
        assert len(image) == PAGE_SIZE
        back = Page.from_bytes(image)
        assert back.page_id == 7
        assert back.records() == p.records()
        assert back.free_space == p.free_space
        assert len(back.to_bytes()) == PAGE_SIZE

    def test_round_trip_preserves_tombstones_and_lsn(self):
        p = Page(3)
        slots = [p.insert(b"r%d" % i) for i in range(4)]
        p.delete(slots[1])
        p.delete(slots[2])
        p.lsn = 12345
        back = Page.from_bytes(p.to_bytes())
        assert back.lsn == 12345
        assert back.slot_count == 4
        assert [s for s, _ in back.records()] == [0, 3]
        # reuse works on the deserialized page exactly as on the original
        assert back.insert(b"new") == 1

    def test_empty_page_round_trips(self):
        back = Page.from_bytes(Page(0).to_bytes())
        assert back.slot_count == 0
        assert back.free_space == PAGE_SIZE - HEADER_SIZE

    def test_zero_image_is_fresh_page(self):
        page = Page.from_bytes(b"\x00" * PAGE_SIZE, expected_page_id=9)
        assert page.page_id == 9
        assert page.slot_count == 0

    def test_random_churn_round_trips(self):
        rng = random.Random(42)
        p = Page(1)
        live: list[int] = []
        for _ in range(300):
            if live and rng.random() < 0.45:
                p.delete(live.pop(rng.randrange(len(live))))
            else:
                record = bytes(rng.randrange(0, 256) for _ in range(rng.randrange(1, 120)))
                if p.fits(record):
                    live.append(p.insert(record))
        back = Page.from_bytes(p.to_bytes())
        assert back.records() == p.records()
        assert back.free_space == p.free_space
        assert back.to_bytes() == p.to_bytes()

    def test_wrong_size_rejected(self):
        with pytest.raises(StorageError):
            Page.from_bytes(b"x" * (PAGE_SIZE - 1))

    def test_torn_image_detected_by_crc(self):
        p = Page(0)
        p.insert(b"important")
        image = bytearray(p.to_bytes())
        image[2048] ^= 0xFF  # flip a bit mid-page
        with pytest.raises(StorageError):
            Page.from_bytes(bytes(image))

    def test_bad_magic_rejected(self):
        image = bytearray(Page(0).to_bytes())
        image[0] = 0x00
        image[1] = 0x01
        with pytest.raises(StorageError):
            Page.from_bytes(bytes(image))

    def test_mismatched_page_id_rejected(self):
        image = Page(4).to_bytes()
        with pytest.raises(StorageError):
            Page.from_bytes(image, expected_page_id=5)

    def test_clear_resets_to_empty(self):
        p = Page(2)
        for i in range(5):
            p.insert(b"r%d" % i)
        p.delete(1)
        p.clear()
        assert p.slot_count == 0
        assert p.free_space == PAGE_SIZE - HEADER_SIZE
        assert p.insert(b"fresh") == 0

    def test_restore_reproduces_slot_assignment(self):
        p = Page(0)
        p.restore(2, b"third")
        p.restore(0, b"first")
        assert p.read(0) == b"first"
        assert p.read(2) == b"third"
        assert p.slot_count == 3
        # the padding tombstone at slot 1 is reusable
        assert p.insert(b"second") == 1

    def test_restore_into_occupied_slot_rejected(self):
        p = Page(0)
        p.insert(b"here")
        with pytest.raises(StorageError):
            p.restore(0, b"collision")
