"""Tests for repro.storage.pages and heap."""

import pytest

from repro.errors import PageOverflowError, RecordNotFoundError
from repro.storage.heap import HeapFile
from repro.storage.pages import PAGE_SIZE, Page


class TestPage:
    def test_insert_and_read(self):
        p = Page(0)
        slot = p.insert(b"hello")
        assert p.read(slot) == b"hello"

    def test_free_space_decreases(self):
        p = Page(0)
        before = p.free_space
        p.insert(b"x" * 100)
        assert p.free_space == before - 108  # record + slot cost

    def test_overflow_raises(self):
        p = Page(0)
        with pytest.raises(PageOverflowError):
            p.insert(b"x" * PAGE_SIZE)

    def test_fits_predicate(self):
        p = Page(0)
        assert p.fits(b"x" * 100)
        assert not p.fits(b"x" * PAGE_SIZE)

    def test_delete_tombstones(self):
        p = Page(0)
        slot = p.insert(b"gone")
        p.delete(slot)
        with pytest.raises(RecordNotFoundError):
            p.read(slot)
        assert p.live_count == 0
        assert p.slot_count == 1

    def test_delete_reclaims_body_space(self):
        p = Page(0)
        slot = p.insert(b"x" * 100)
        free_after_insert = p.free_space
        p.delete(slot)
        assert p.free_space == free_after_insert + 100

    def test_records_iterates_live_only(self):
        p = Page(0)
        a = p.insert(b"a")
        p.insert(b"b")
        p.delete(a)
        assert [r for _, r in p.records()] == [b"b"]

    def test_bad_slot_raises(self):
        with pytest.raises(RecordNotFoundError):
            Page(0).read(3)


class TestHeapFile:
    def test_insert_allocates_pages(self):
        h = HeapFile()
        big = b"x" * 2000
        for _ in range(5):
            h.insert(big)
        assert h.page_count >= 3  # two 2000-byte records per 4K page

    def test_read_by_rid(self):
        h = HeapFile()
        rid = h.insert(b"data")
        assert h.read(rid) == b"data"

    def test_record_larger_than_page_rejected(self):
        h = HeapFile()
        with pytest.raises(PageOverflowError):
            h.insert(b"x" * (PAGE_SIZE + 1))

    def test_scan_counts_pages_and_records(self):
        h = HeapFile()
        for i in range(10):
            h.insert(f"rec{i}".encode())
        h.stats.reset()
        records = list(h.scan())
        assert len(records) == 10
        assert h.stats.page_reads == h.page_count
        assert h.stats.records_visited == 10

    def test_delete_removes_from_scan(self):
        h = HeapFile()
        rid = h.insert(b"dead")
        h.insert(b"alive")
        h.delete(rid)
        assert [r for _, r in h.scan()] == [b"alive"]
        assert h.record_count == 1

    def test_read_many_charges_distinct_pages_once(self):
        h = HeapFile()
        rids = [h.insert(b"r%d" % i) for i in range(5)]
        h.stats.reset()
        out = h.read_many(rids)
        assert len(out) == 5
        assert h.stats.page_reads == 1  # all on one page

    def test_used_and_allocated_bytes(self):
        h = HeapFile()
        h.insert(b"x" * 10)
        assert h.used_bytes() == 10
        assert h.allocated_bytes() == PAGE_SIZE


class TestIterRecords:
    def test_generator_matches_records_list(self):
        import types

        p = Page(0)
        for i in range(5):
            p.insert(b"r%d" % i)
        p.delete(1)
        p.delete(3)
        it = p.iter_records()
        assert isinstance(it, types.GeneratorType)
        assert list(it) == p.records()
        assert [s for s, _ in p.iter_records()] == [0, 2, 4]

    def test_delete_returns_record(self):
        p = Page(0)
        slot = p.insert(b"payload")
        assert p.delete(slot) == b"payload"
