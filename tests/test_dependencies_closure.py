"""Tests for repro.dependencies.closure."""

from repro.dependencies.closure import (
    attribute_closure,
    derive,
    fd_implies,
    fds_equivalent,
    project_fds,
)
from repro.dependencies.fd import FunctionalDependency as FD

CHAIN = [FD.parse("A -> B"), FD.parse("B -> C"), FD.parse("C -> D")]


class TestClosure:
    def test_chain(self):
        assert attribute_closure({"A"}, CHAIN) == {"A", "B", "C", "D"}

    def test_middle_of_chain(self):
        assert attribute_closure({"C"}, CHAIN) == {"C", "D"}

    def test_no_fds(self):
        assert attribute_closure({"A"}, []) == {"A"}

    def test_composite_lhs_needed(self):
        fds = [FD.parse("A, B -> C")]
        assert attribute_closure({"A"}, fds) == {"A"}
        assert attribute_closure({"A", "B"}, fds) == {"A", "B", "C"}

    def test_cyclic_fds_terminate(self):
        fds = [FD.parse("A -> B"), FD.parse("B -> A")]
        assert attribute_closure({"A"}, fds) == {"A", "B"}


class TestImplication:
    def test_implied_transitively(self):
        assert fd_implies(CHAIN, FD.parse("A -> D"))

    def test_not_implied(self):
        assert not fd_implies(CHAIN, FD.parse("B -> A"))

    def test_equivalence(self):
        merged = [FD.parse("A -> B, C, D"), FD.parse("B -> C"), FD.parse("C -> D")]
        assert fds_equivalent(CHAIN, merged)

    def test_non_equivalence(self):
        assert not fds_equivalent(CHAIN, [FD.parse("A -> B")])


class TestProjection:
    def test_transitive_fd_appears(self):
        projected = project_fds(CHAIN, {"A", "C"})
        assert any(
            fd.lhs == {"A"} and "C" in fd.rhs for fd in projected
        )

    def test_projection_drops_outside_attributes(self):
        projected = project_fds(CHAIN, {"A", "C"})
        for fd in projected:
            assert fd.attributes <= {"A", "C"}


class TestDerivation:
    def test_derivation_exists_for_implied(self):
        steps = derive(CHAIN, FD.parse("A -> D"), "ABCD")
        assert steps is not None
        assert steps[0].rule == "reflexivity"
        assert steps[-1].conclusion == FD.parse("A -> D")

    def test_derivation_none_for_unimplied(self):
        assert derive(CHAIN, FD.parse("D -> A"), "ABCD") is None

    def test_derivation_steps_are_sound(self):
        # every step's conclusion must itself be implied by the base FDs
        steps = derive(CHAIN, FD.parse("A -> C"), "ABCD")
        for step in steps:
            assert fd_implies(CHAIN, step.conclusion)
