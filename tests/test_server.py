"""The socket server tier: wire protocol, served sessions, client
connections, error mapping, graceful shutdown, and the CLI entry.

The served surface must behave like the embedded one: same rows (as
ValueSet tuples), same rowcounts, same exception types — including
``SerializationError`` surviving the round trip so remote losers can
retry — with per-connection transaction scope and snapshot isolation
between clients.
"""

import socket
import struct
import threading

import pytest

import repro.db
from repro.db import SerializationError
from repro.server import DatabaseServer, ProtocolError, client, serve
from repro.server.protocol import decode_row, encode_row, recv_frame, send_frame
from repro.workloads.paper_examples import FIG1_R1


@pytest.fixture
def served():
    database = repro.db.Database()
    database.register(
        "Enrollment", FIG1_R1, order=["Course", "Club", "Student"]
    )
    server = serve(database, port=0)
    yield server
    server.shutdown()


class TestProtocol:
    def test_frame_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"op": "ping", "n": 1})
            assert recv_frame(b) == {"op": "ping", "n": 1}
            b.close()
            assert recv_frame(a) is None  # clean EOF
        finally:
            a.close()

    def test_oversized_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 1 << 31))
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_row_codec_roundtrips_value_sets(self):
        from repro.core.values import ValueSet

        row = (ValueSet(["s2", "s1"]), ValueSet([3]))
        wire = encode_row(row, text=False)
        assert wire == [["s1", "s2"], [3]]
        assert decode_row(wire, text=False) == row

    def test_text_rows_pass_through(self):
        assert encode_row(("QUERY PLAN",), text=True) == ["QUERY PLAN"]
        assert decode_row(["QUERY PLAN"], text=True) == ("QUERY PLAN",)


class TestServedQueries:
    def test_query_matches_embedded_results(self, served):
        conn = client(served.host, served.port)
        embedded = served.database.session()
        embedded.execute("Enrollment")
        cur = conn.execute("Enrollment")
        assert cur.fetchall() == embedded.fetchall()
        assert [c[0] for c in cur.description] == [
            "Student", "Course", "Club",
        ]
        conn.close()

    def test_dml_and_params(self, served):
        conn = client(served.host, served.port)
        cur = conn.execute(
            "INSERT INTO Enrollment VALUES (?, ?, ?)", ["s9", "c9", "b9"]
        )
        assert cur.rowcount == 1
        cur = conn.execute(
            "SELECT Enrollment WHERE Student CONTAINS :who", {"who": "s9"}
        )
        assert len(cur.fetchall()) == 1
        conn.close()

    def test_executemany(self, served):
        conn = client(served.host, served.port)
        cur = conn.executemany(
            "INSERT INTO Enrollment VALUES (?, ?, ?)",
            [["m1", "c1", "b1"], ["m2", "c1", "b1"]],
        )
        assert cur.rowcount == 2
        conn.close()

    def test_text_statements(self, served):
        conn = client(served.host, served.port)
        cur = conn.execute("EXPLAIN Enrollment")
        assert cur.description is None
        assert "QUERY PLAN" in cur.fetchone()[0]
        conn.close()

    def test_large_results_stream_in_chunks(self):
        database = repro.db.Database()
        database.register(
            "Enrollment", FIG1_R1, order=["Course", "Club", "Student"]
        )
        server = DatabaseServer(database, port=0, inline_rows=4).start()
        try:
            conn = client(server.host, server.port)
            conn.executemany(
                "INSERT INTO Enrollment VALUES (?, ?, ?)",
                [[f"s{i}", "c1", "b1"] for i in range(30)],
            )
            rows = conn.execute("FLATTEN Enrollment").fetchall()
            assert len(rows) > 30
            # iteration also crosses chunk boundaries
            assert sum(1 for _ in conn.execute("FLATTEN Enrollment")) == len(
                rows
            )
            conn.close()
        finally:
            server.shutdown()

    def test_remote_errors_keep_their_type(self, served):
        conn = client(served.host, served.port)
        with pytest.raises(repro.errors.CatalogError):
            conn.execute("NoSuchRelation")
        with pytest.raises(repro.db.IntegrityError):
            conn.execute("DELETE FROM Enrollment VALUES ('zz', 'zz', 'zz')")
        # the connection survives server-side errors
        assert conn.ping()
        conn.close()


class TestServedTransactions:
    def test_transaction_scope_per_connection(self, served):
        a = client(served.host, served.port)
        b = client(served.host, served.port)
        a.begin()
        a.execute("INSERT INTO Enrollment VALUES ('tx1', 'c1', 'b1')")
        cur = b.execute("SELECT Enrollment WHERE Student CONTAINS 'tx1'")
        assert cur.fetchall() == []  # not visible before commit
        a.commit()
        cur = b.execute("SELECT Enrollment WHERE Student CONTAINS 'tx1'")
        assert len(cur.fetchall()) == 1
        a.close()
        b.close()

    def test_remote_conflict_is_retryable(self, served):
        a = client(served.host, served.port)
        b = client(served.host, served.port)
        a.begin()
        b.begin()
        a.execute("INSERT INTO Enrollment VALUES ('w1', 'c1', 'b1')")
        with pytest.raises(SerializationError):
            b.execute("INSERT INTO Enrollment VALUES ('w1', 'c1', 'b1')")
        assert not b.in_transaction  # rolled back server-side
        a.commit()
        b.execute("INSERT INTO Enrollment VALUES ('w1', 'c1', 'b1')")
        a.close()
        b.close()

    def test_disconnect_rolls_back_open_transaction(self, served):
        a = client(served.host, served.port)
        a.begin()
        a.execute("INSERT INTO Enrollment VALUES ('drop1', 'c1', 'b1')")
        a._sock.close()  # vanish without COMMIT
        a._closed = True
        b = client(served.host, served.port)
        for _ in range(50):
            cur = b.execute(
                "SELECT Enrollment WHERE Student CONTAINS 'drop1'"
            )
            if served.database.transactions.open_sessions <= 1:
                break
        assert cur.fetchall() == []
        b.close()

    def test_context_manager_commits_on_success(self, served):
        with client(served.host, served.port) as conn:
            conn.begin()
            conn.execute("INSERT INTO Enrollment VALUES ('cm1', 'c1', 'b1')")
        check = client(served.host, served.port)
        cur = check.execute("SELECT Enrollment WHERE Student CONTAINS 'cm1'")
        assert len(cur.fetchall()) == 1
        check.close()


class TestServerLifecycle:
    def test_ephemeral_port_and_ping(self, served):
        assert served.port != 0
        conn = client(served.host, served.port)
        assert conn.ping()
        conn.close()

    def test_shutdown_is_graceful_and_idempotent(self):
        database = repro.db.Database()
        database.register(
            "Enrollment", FIG1_R1, order=["Course", "Club", "Student"]
        )
        server = serve(database, port=0)
        conns = [client(server.host, server.port) for _ in range(4)]
        for i, c in enumerate(conns):
            c.execute(
                "INSERT INTO Enrollment VALUES (?, ?, ?)", [f"z{i}", "c1", "b1"]
            )
        server.shutdown()
        server.shutdown()  # idempotent
        assert database.transactions.open_sessions == 0
        with pytest.raises(repro.db.Error):
            conns[0].execute("Enrollment")

    def test_serve_path_owns_database(self, tmp_path):
        path = str(tmp_path / "srv.db")
        server = serve(path, port=0)
        conn = client(server.host, server.port)
        conn.execute("LET R = PROJECT Enrollment ON (Student)") if False else None
        conn.close()
        server.shutdown()
        # the server closed its database: the file lock is free again
        reopened = repro.db.Database(path=path)
        reopened.close()

    def test_concurrent_client_threads_mixed_workload(self, served):
        errors = []

        def worker(i):
            try:
                conn = client(served.host, served.port)
                for j in range(8):
                    if j % 3 == 0:
                        conn.execute(
                            "SELECT Enrollment WHERE Course CONTAINS 'c1'"
                        ).fetchall()
                    else:
                        try:
                            conn.execute(
                                "INSERT INTO Enrollment VALUES (?, ?, ?)",
                                [f"cw{i}_{j}", "c1", "b1"],
                            )
                        except SerializationError:
                            pass
                conn.close()
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []


class TestCLI:
    def test_serve_subcommand_wired(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["serve", "x.db", "--port", "7"])
        assert args.path == "x.db"
        assert args.port == 7
        assert args.host == "127.0.0.1"
