"""Tests for repro.dependencies.synthesis (Bernstein 3NF)."""

from repro.dependencies.fd import FunctionalDependency as FD
from repro.dependencies.synthesis import synthesize_3nf, verify_synthesis


class TestSynthesis:
    def test_chain_produces_two_schemas(self):
        fds = [FD.parse("A -> B"), FD.parse("B -> C")]
        result = synthesize_3nf(["A", "B", "C"], fds)
        assert result.as_sorted_lists() == [["A", "B"], ["B", "C"]]

    def test_guarantees_hold_for_chain(self):
        fds = [FD.parse("A -> B"), FD.parse("B -> C")]
        result = synthesize_3nf(["A", "B", "C"], fds)
        flags = verify_synthesis(["A", "B", "C"], fds, result)
        assert flags == {
            "lossless_join": True,
            "dependency_preserving": True,
            "all_3nf": True,
        }

    def test_key_schema_added_when_missing(self):
        # B -> C over {A, B, C}: key is {A, B}, not contained in {B, C}.
        fds = [FD.parse("B -> C")]
        result = synthesize_3nf(["A", "B", "C"], fds)
        assert result.added_key == frozenset({"A", "B"})
        assert frozenset({"A", "B"}) in result.schemas

    def test_orphan_attributes_get_a_home(self):
        fds = [FD.parse("A -> B")]
        result = synthesize_3nf(["A", "B", "Z"], fds)
        covered = frozenset().union(*result.schemas)
        assert "Z" in covered

    def test_no_fds(self):
        result = synthesize_3nf(["A", "B"], [])
        assert result.as_sorted_lists() == [["A", "B"]]

    def test_contained_schema_dropped(self):
        fds = [FD.parse("A -> B"), FD.parse("A -> C")]
        result = synthesize_3nf(["A", "B", "C"], fds)
        assert result.as_sorted_lists() == [["A", "B", "C"]]

    def test_city_street_zip(self):
        fds = [FD.parse("City, Street -> Zip"), FD.parse("Zip -> City")]
        result = synthesize_3nf(["City", "Street", "Zip"], fds)
        flags = verify_synthesis(["City", "Street", "Zip"], fds, result)
        assert flags["lossless_join"]
        assert flags["dependency_preserving"]
        assert flags["all_3nf"]

    def test_synthesis_deterministic(self):
        fds = [FD.parse("A -> B"), FD.parse("B -> C"), FD.parse("C -> D")]
        r1 = synthesize_3nf(["A", "B", "C", "D"], fds)
        r2 = synthesize_3nf(["A", "B", "C", "D"], list(reversed(fds)))
        assert r1.schemas == r2.schemas
