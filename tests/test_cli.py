"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.relational import io as rio
from repro.relational.relation import Relation


@pytest.fixture
def data_file(tmp_path):
    rel = Relation.from_rows(
        ["Student", "Course", "Club"],
        [("s1", "c1", "b1"), ("s1", "c2", "b1"), ("s2", "c1", "b2")],
    )
    path = tmp_path / "enrollment.txt"
    path.write_text(rio.dumps(rel))
    return str(path)


class TestLoad:
    def test_load_prints_table(self, data_file, capsys):
        assert main(["load", "Enrollment", data_file]) == 0
        out = capsys.readouterr().out
        assert "Enrollment" in out
        assert "s1" in out
        assert "3 flat tuples" in out


class TestQuery:
    def test_query_select(self, data_file, capsys):
        code = main(
            [
                "query",
                "SELECT E WHERE Club CONTAINS 'b1'",
                "--load",
                f"E={data_file}",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "s1" in out
        assert "s2" not in out

    def test_query_nest(self, data_file, capsys):
        main(["query", "NEST E BY (Course)", "--load", f"E={data_file}"])
        out = capsys.readouterr().out
        assert "c1, c2" in out

    def test_query_error_reported(self, data_file, capsys):
        code = main(
            ["query", "SELECT Nope WHERE A CONTAINS 'x'",
             "--load", f"E={data_file}"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_bad_load_spec_exits(self, data_file):
        with pytest.raises(SystemExit):
            main(["query", "E", "--load", "no-equals-sign"])

    def test_query_stats_prints_io(self, data_file, capsys):
        code = main(
            [
                "query",
                "INSERT INTO E VALUES ('s9', 'c9', 'b9')",
                "--load",
                f"E={data_file}",
                "--stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "page writes" in out
        assert "records touched" in out

    def test_query_stats_silent_without_mutation(self, data_file, capsys):
        main(["query", "E", "--load", f"E={data_file}", "--stats"])
        assert "page writes" not in capsys.readouterr().out


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "DELETE FROM Enrollment" in out
        assert "Student" in out


class TestRepl:
    def test_repl_quits_and_lists_catalog(self, data_file, capsys, monkeypatch):
        inputs = iter(["catalog", "E", "quit"])
        monkeypatch.setattr(
            "builtins.input", lambda prompt="": next(inputs)
        )
        assert main(["repl", "--load", f"E={data_file}"]) == 0
        out = capsys.readouterr().out
        assert "3 tuples" in out or "3 flats" in out

    def test_repl_storage_and_io_commands(
        self, data_file, capsys, monkeypatch
    ):
        inputs = iter(
            [
                "INSERT INTO E VALUES ('s9', 'c9', 'b9')",
                "storage",
                "io",
                "quit",
            ]
        )
        monkeypatch.setattr(
            "builtins.input", lambda prompt="": next(inputs)
        )
        assert main(["repl", "--load", f"E={data_file}"]) == 0
        out = capsys.readouterr().out
        assert "records on" in out
        assert "page writes" in out

    def test_repl_storage_command_is_read_only(
        self, data_file, capsys, monkeypatch
    ):
        """'storage' must not build backing stores (which would replace
        catalog entries with the canonical representation)."""
        inputs = iter(["catalog", "storage", "catalog", "quit"])
        monkeypatch.setattr(
            "builtins.input", lambda prompt="": next(inputs)
        )
        assert main(["repl", "--load", f"E={data_file}"]) == 0
        out = capsys.readouterr().out
        assert "no paged store yet" in out
        assert out.count("3 tuples") == 2  # unchanged before and after

    def test_repl_reports_errors_and_continues(self, capsys, monkeypatch):
        inputs = iter(["SELECT Missing WHERE A CONTAINS 'x'", "exit"])
        monkeypatch.setattr(
            "builtins.input", lambda prompt="": next(inputs)
        )
        assert main(["repl"]) == 0
        assert "error" in capsys.readouterr().out

    def test_repl_eof_exits(self, capsys, monkeypatch):
        def raise_eof(prompt=""):
            raise EOFError

        monkeypatch.setattr("builtins.input", raise_eof)
        assert main(["repl"]) == 0
