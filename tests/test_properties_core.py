"""Property-based tests (hypothesis) for the NF2 core invariants.

Strategies generate small random 1NF relations; properties are the
paper's theorems stated over arbitrary inputs rather than the worked
examples.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.canonical import canonical_form, canonical_form_randomized
from repro.core.composition import all_composable_pairs, compose, decompose
from repro.core.irreducible import is_irreducible, reduce_greedy
from repro.core.nest import nest, nest_sequence, unnest, unnest_fully
from repro.core.nfr_relation import NFRelation
from repro.core.fixedness import is_fixed
from repro.relational.relation import Relation

ATTRS2 = ["A", "B"]
ATTRS3 = ["A", "B", "C"]


def relations(attrs, max_rows=10, domain=4):
    """Strategy: a small 1NF relation over ``attrs``."""
    value = st.integers(min_value=0, max_value=domain - 1)
    row = st.tuples(*[value for _ in attrs])
    return st.lists(row, min_size=1, max_size=max_rows).map(
        lambda rows: Relation.from_rows(attrs, rows)
    )


def orders(attrs):
    return st.permutations(attrs).map(list)


class TestRStarPreservation:
    """Theorem 1 / §3.2: compositions and decompositions never change R*."""

    @given(relations(ATTRS3), orders(ATTRS3))
    @settings(max_examples=60, deadline=None)
    def test_canonical_preserves_r_star(self, rel, order):
        assert canonical_form(rel, order).to_1nf() == rel

    @given(relations(ATTRS3), orders(ATTRS3))
    @settings(max_examples=60, deadline=None)
    def test_canonical_expansions_disjoint(self, rel, order):
        assert canonical_form(rel, order).expansions_disjoint()

    @given(relations(ATTRS2), st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_greedy_reduction_preserves_r_star(self, rel, rng):
        form = reduce_greedy(rel, rng=rng)
        assert form.to_1nf() == rel
        assert is_irreducible(form)

    @given(relations(ATTRS3))
    @settings(max_examples=40, deadline=None)
    def test_single_composition_preserves_r_star(self, rel):
        nfr = NFRelation.from_1nf(rel)
        witness = next(all_composable_pairs(nfr.tuples), None)
        if witness is None:
            return
        r, s, attr = witness
        merged = nfr.replace_tuples([r, s], [compose(r, s, attr)])
        assert merged.to_1nf() == rel

    @given(relations(ATTRS3), orders(ATTRS3))
    @settings(max_examples=40, deadline=None)
    def test_decomposition_preserves_r_star(self, rel, order):
        form = canonical_form(rel, order)
        for t in form.sorted_tuples():
            for attr in ATTRS3:
                if len(t[attr]) > 1:
                    value = t[attr].sorted()[0]
                    te, tr = decompose(t, attr, value)
                    split = form.replace_tuples([t], [te, tr])
                    assert split.to_1nf() == rel
                    return


class TestNestProperties:
    @given(relations(ATTRS3), st.sampled_from(ATTRS3))
    @settings(max_examples=60, deadline=None)
    def test_nest_idempotent(self, rel, attr):
        nfr = NFRelation.from_1nf(rel)
        once = nest(nfr, attr)
        assert nest(once, attr) == once

    @given(relations(ATTRS3), st.sampled_from(ATTRS3))
    @settings(max_examples=60, deadline=None)
    def test_unnest_inverts_nest_on_flat(self, rel, attr):
        nfr = NFRelation.from_1nf(rel)
        assert unnest(nest(nfr, attr), attr) == nfr

    @given(relations(ATTRS3), orders(ATTRS3))
    @settings(max_examples=40, deadline=None)
    def test_unnest_fully_recovers_lifted_form(self, rel, order):
        form = nest_sequence(NFRelation.from_1nf(rel), order)
        assert unnest_fully(form) == NFRelation.from_1nf(rel)

    @given(relations(ATTRS3), st.sampled_from(ATTRS3))
    @settings(max_examples=40, deadline=None)
    def test_nest_never_increases_tuples(self, rel, attr):
        nfr = NFRelation.from_1nf(rel)
        assert nest(nfr, attr).cardinality <= nfr.cardinality


class TestTheorem2Confluence:
    @given(
        relations(ATTRS2, max_rows=8, domain=3),
        orders(ATTRS2),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_composition_order_irrelevant(self, rel, order, seed):
        expected = canonical_form(rel, order)
        got = canonical_form_randomized(rel, order, random.Random(seed))
        assert got == expected

    @given(
        relations(ATTRS3, max_rows=7, domain=3),
        orders(ATTRS3),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_composition_order_irrelevant_degree3(self, rel, order, seed):
        expected = canonical_form(rel, order)
        got = canonical_form_randomized(rel, order, random.Random(seed))
        assert got == expected


class TestCanonicalStructure:
    @given(relations(ATTRS3), orders(ATTRS3))
    @settings(max_examples=50, deadline=None)
    def test_canonical_is_irreducible(self, rel, order):
        assert is_irreducible(canonical_form(rel, order))

    @given(relations(ATTRS3), orders(ATTRS3))
    @settings(max_examples=50, deadline=None)
    def test_theorem5_fixed_on_all_but_first(self, rel, order):
        form = canonical_form(rel, order)
        assert is_fixed(form, order[1:])

    @given(relations(ATTRS3), orders(ATTRS3))
    @settings(max_examples=50, deadline=None)
    def test_canonical_no_bigger_than_flat(self, rel, order):
        assert canonical_form(rel, order).cardinality <= rel.cardinality
