"""Tests for repro.workloads (generators plant what they claim)."""

from repro.dependencies.fd import FunctionalDependency as FD
from repro.dependencies.mvd import MultivaluedDependency as MVD
from repro.workloads.synthetic import (
    product_blocks,
    random_relation,
    skewed_relation,
    update_stream,
    with_planted_fd,
    with_planted_mvd,
)
from repro.workloads.university import (
    ENROLLMENT_MVD,
    UniversityConfig,
    drop_course_updates,
    enrollment,
    registration,
)


class TestUniversity:
    def test_enrollment_mvd_holds(self):
        rel = enrollment(UniversityConfig(students=15, seed=2))
        assert ENROLLMENT_MVD.holds_in(rel)

    def test_enrollment_deterministic(self):
        cfg = UniversityConfig(students=10, seed=4)
        assert enrollment(cfg) == enrollment(cfg)

    def test_registration_schema(self):
        rel = registration(UniversityConfig(students=10, seed=2))
        assert rel.schema.names == ("Student", "Course", "Semester")
        assert rel.cardinality > 0

    def test_drop_course_updates_selects_matching(self):
        rel = enrollment(UniversityConfig(students=10, seed=2))
        some = rel.sorted_tuples()[0]
        updates = drop_course_updates(
            rel, some["Student"], some["Course"]
        )
        assert some in updates
        assert all(
            f["Student"] == some["Student"]
            and f["Course"] == some["Course"]
            for f in updates
        )


class TestSynthetic:
    def test_random_relation_cardinality(self):
        rel = random_relation(["A", "B"], 30, domain_size=10, seed=1)
        assert rel.cardinality == 30

    def test_random_relation_caps_at_space(self):
        rel = random_relation(["A"], 100, domain_size=5, seed=1)
        assert rel.cardinality == 5

    def test_planted_fd_holds(self):
        rel = with_planted_fd(["A", "B", "C"], ["A"], 50, seed=2)
        assert FD(["A"], ["B"]).holds_in(rel)
        assert FD(["A"], ["C"]).holds_in(rel)

    def test_planted_composite_fd(self):
        rel = with_planted_fd(["A", "B", "C"], ["A", "B"], 50, seed=2)
        assert FD(["A", "B"], ["C"]).holds_in(rel)

    def test_planted_mvd_holds(self):
        rel = with_planted_mvd(
            ["A", "B", "C"], ["A"], ["B"], keys=8, seed=3
        )
        assert MVD(["A"], ["B"]).holds_in(rel)

    def test_planted_mvd_needs_complement(self):
        import pytest

        with pytest.raises(ValueError):
            with_planted_mvd(["A", "B"], ["A"], ["B"])

    def test_product_blocks_compress_fully(self):
        from repro.core.canonical import canonical_form

        rel = product_blocks(["A", "B", "C"], blocks=3, block_side=2)
        assert rel.cardinality == 3 * 8
        form = canonical_form(rel, ["A", "B", "C"])
        assert form.cardinality == 3  # one NFR tuple per block

    def test_skewed_relation_has_skew(self):
        # keep the key space sparse (60 rows in a 20x20 space) so the
        # zipf head can actually dominate
        rel = skewed_relation(["A", "B"], 60, domain_size=20, seed=4)
        counts = sorted(
            (
                len([t for t in rel if t["A"] == v])
                for v in rel.column("A")
            ),
            reverse=True,
        )
        assert counts[0] >= 3 * counts[-1]

    def test_update_stream_disjoint_and_valid(self):
        rel = random_relation(["A", "B"], 40, domain_size=8, seed=5)
        ins, dels = update_stream(rel, 10, 10, seed=6)
        assert len(ins) == 10
        assert len(dels) == 10
        assert all(f not in rel for f in ins)
        assert all(f in rel for f in dels)

    def test_update_stream_deterministic(self):
        rel = random_relation(["A", "B"], 40, domain_size=8, seed=5)
        assert update_stream(rel, 5, 5, seed=7) == update_stream(
            rel, 5, 5, seed=7
        )
