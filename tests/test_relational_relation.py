"""Tests for repro.relational.relation."""

import pytest

from repro.errors import AlgebraError, SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema
from repro.relational.tuples import FlatTuple


class TestConstruction:
    def test_from_rows(self, ab_schema):
        r = Relation.from_rows(ab_schema, [("a", "b"), ("a", "b")])
        assert len(r) == 1  # set semantics

    def test_from_rows_with_string_schema(self):
        r = Relation.from_rows(["A"], [("x",)])
        assert r.schema.names == ("A",)

    def test_from_records(self, ab_schema):
        r = Relation.from_records(ab_schema, [{"A": "a", "B": "b"}])
        assert len(r) == 1

    def test_mismatched_tuple_schema_rejected(self, ab_schema):
        t = FlatTuple(RelationSchema(["X", "Y"]), ["a", "b"])
        with pytest.raises(SchemaError):
            Relation(ab_schema, [t])


class TestAccess:
    def test_cardinality_and_degree(self, small_ab):
        assert small_ab.cardinality == 4
        assert small_ab.degree == 2

    def test_contains(self, small_ab, ab_schema):
        assert FlatTuple(ab_schema, ["a1", "b1"]) in small_ab
        assert FlatTuple(ab_schema, ["a9", "b9"]) not in small_ab

    def test_column(self, small_ab):
        assert small_ab.column("A") == {"a1", "a2", "a3"}

    def test_active_domains(self, small_ab):
        doms = small_ab.active_domains()
        assert doms["B"] == {"b1", "b2"}

    def test_sorted_tuples_deterministic(self, small_ab):
        first = [t.values for t in small_ab.sorted_tuples()]
        second = [t.values for t in small_ab.sorted_tuples()]
        assert first == second
        assert first[0] == ("a1", "b1")

    def test_bool(self, ab_schema, small_ab):
        assert small_ab
        assert not Relation(ab_schema)


class TestDerivation:
    def test_with_and_without_tuple(self, small_ab, ab_schema):
        t = FlatTuple(ab_schema, ["a9", "b9"])
        bigger = small_ab.with_tuple(t)
        assert len(bigger) == 5
        assert len(bigger.without_tuple(t)) == 4

    def test_filter(self, small_ab):
        assert len(small_ab.filter(lambda t: t["B"] == "b1")) == 2

    def test_map_rows(self, small_ab):
        upper = small_ab.map_rows(
            lambda t: t.with_value("A", t["A"].upper())
        )
        assert upper.column("A") == {"A1", "A2", "A3"}


class TestEquality:
    def test_equality_ignores_insertion_order(self, ab_schema):
        r1 = Relation.from_rows(ab_schema, [("a", "b"), ("c", "d")])
        r2 = Relation.from_rows(ab_schema, [("c", "d"), ("a", "b")])
        assert r1 == r2
        assert hash(r1) == hash(r2)

    def test_is_subset_of(self, small_ab, ab_schema):
        sub = Relation.from_rows(ab_schema, [("a1", "b1")])
        assert sub.is_subset_of(small_ab)
        assert not small_ab.is_subset_of(sub)

    def test_incompatible_comparison_raises(self, small_ab):
        other = Relation.from_rows(["X"], [("x",)])
        with pytest.raises(AlgebraError):
            small_ab.is_subset_of(other)


class TestRendering:
    def test_to_table_contains_values(self, small_ab):
        table = small_ab.to_table(title="R")
        assert table.startswith("R")
        assert "a1" in table and "b2" in table
