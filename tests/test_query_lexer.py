"""Tests for repro.query.lexer."""

import pytest

from repro.errors import LexError
from repro.query.lexer import Token, tokenize


class TestTokenize:
    def test_keywords_case_insensitive(self):
        toks = tokenize("select WHERE Nest")
        assert [t.kind for t in toks] == ["KEYWORD"] * 3
        assert [t.value for t in toks] == ["SELECT", "WHERE", "NEST"]

    def test_identifiers(self):
        toks = tokenize("Enrollment my_rel R2")
        assert all(t.kind == "IDENT" for t in toks)

    def test_string_literal(self):
        [tok] = tokenize("'hello world'")
        assert tok.kind == "STRING"
        assert tok.value == "hello world"

    def test_string_escape(self):
        [tok] = tokenize("'it''s'")
        assert tok.value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("'oops")

    def test_numbers(self):
        toks = tokenize("42 -3 2.5")
        assert [t.value for t in toks] == [42, -3, 2.5]
        assert toks[2].kind == "NUMBER"

    def test_symbols(self):
        toks = tokenize("( ) { } , =")
        assert [t.kind for t in toks] == ["(", ")", "{", "}", ",", "="]

    def test_positions_recorded(self):
        toks = tokenize("A = 'x'")
        assert toks[0].position == 0
        assert toks[1].position == 2

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("A @ B")

    def test_mixed_statement(self):
        toks = tokenize("SELECT R WHERE A CONTAINS 'a1'")
        kinds = [t.kind for t in toks]
        assert kinds == [
            "KEYWORD",
            "IDENT",
            "KEYWORD",
            "IDENT",
            "KEYWORD",
            "STRING",
        ]

    def test_empty_input(self):
        assert tokenize("   ") == []
