"""Tests for repro.relational.tuples."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import RelationSchema
from repro.relational.tuples import FlatTuple


@pytest.fixture
def schema():
    return RelationSchema(["A", "B", "C"])


@pytest.fixture
def t(schema):
    return FlatTuple(schema, ["a1", "b1", "c1"])


class TestConstruction:
    def test_positional(self, t):
        assert t.values == ("a1", "b1", "c1")

    def test_from_mapping(self, schema):
        t = FlatTuple.from_mapping(schema, {"B": "b", "A": "a", "C": "c"})
        assert t.values == ("a", "b", "c")

    def test_from_mapping_missing_raises(self, schema):
        with pytest.raises(SchemaError, match="missing"):
            FlatTuple.from_mapping(schema, {"A": "a"})

    def test_from_mapping_extra_raises(self, schema):
        with pytest.raises(SchemaError, match="unknown"):
            FlatTuple.from_mapping(
                schema, {"A": "a", "B": "b", "C": "c", "Z": "z"}
            )

    def test_arity_mismatch_raises(self, schema):
        with pytest.raises(SchemaError):
            FlatTuple(schema, ["a"])


class TestAccess:
    def test_getitem_by_name(self, t):
        assert t["B"] == "b1"

    def test_get_with_default(self, t):
        assert t.get("Z", "dflt") == "dflt"

    def test_as_mapping(self, t):
        assert t.as_mapping() == {"A": "a1", "B": "b1", "C": "c1"}

    def test_iter_and_len(self, t):
        assert list(t) == ["a1", "b1", "c1"]
        assert len(t) == 3


class TestDerivation:
    def test_project(self, t):
        assert t.project(["C", "A"]).values == ("c1", "a1")

    def test_drop(self, t):
        assert t.drop(["B"]).values == ("a1", "c1")

    def test_rename(self, t):
        renamed = t.rename({"A": "X"})
        assert renamed["X"] == "a1"

    def test_reorder(self, t):
        assert t.reorder(["C", "B", "A"]).values == ("c1", "b1", "a1")

    def test_concat(self, t):
        other = FlatTuple(RelationSchema(["D"]), ["d1"])
        assert t.concat(other).values == ("a1", "b1", "c1", "d1")

    def test_with_value(self, t):
        assert t.with_value("B", "bX")["B"] == "bX"

    def test_matches(self, t, schema):
        other = FlatTuple(schema, ["a1", "bZ", "c1"])
        assert t.matches(other, ["A", "C"])
        assert not t.matches(other, ["B"])


class TestEquality:
    def test_value_equality(self, schema):
        assert FlatTuple(schema, ["a", "b", "c"]) == FlatTuple(
            schema, ["a", "b", "c"]
        )

    def test_schema_sensitive(self, schema):
        other_schema = RelationSchema(["X", "B", "C"])
        assert FlatTuple(schema, ["a", "b", "c"]) != FlatTuple(
            other_schema, ["a", "b", "c"]
        )

    def test_hashable_in_sets(self, schema):
        s = {FlatTuple(schema, ["a", "b", "c"]), FlatTuple(schema, ["a", "b", "c"])}
        assert len(s) == 1

    def test_str_uses_paper_notation(self, t):
        assert str(t) == "[A(a1) B(b1) C(c1)]"
