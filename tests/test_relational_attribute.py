"""Tests for repro.relational.attribute."""

import pytest

from repro.errors import DomainError
from repro.relational.attribute import ANY, Attribute, Domain, is_atomic


class TestIsAtomic:
    def test_accepts_scalars(self):
        for v in ("x", 1, 1.5, True, None):
            assert is_atomic(v)

    def test_rejects_containers(self):
        for v in ([1], {1}, (1,), {"a": 1}):
            assert not is_atomic(v)


class TestDomain:
    def test_open_domain_accepts_any_atomic(self):
        d = Domain("D")
        assert d.contains("x")
        assert d.contains(42)

    def test_open_domain_rejects_containers(self):
        assert not Domain("D").contains([1, 2])

    def test_typed_domain(self):
        d = Domain("Num", base_type=int)
        assert d.contains(3)
        assert not d.contains("3")

    def test_finite_universe(self):
        d = Domain("Course", universe=frozenset({"c1", "c2"}))
        assert d.contains("c1")
        assert not d.contains("c3")
        assert d.is_finite

    def test_universe_with_non_atomic_element_raises(self):
        with pytest.raises(DomainError):
            Domain("Bad", universe=frozenset({("a",)}))

    def test_validate_returns_value(self):
        assert Domain("D").validate("x") == "x"

    def test_validate_raises_with_domain_name(self):
        with pytest.raises(DomainError, match="Course"):
            Domain("Course", universe=frozenset({"c1"})).validate("zz")


class TestAttribute:
    def test_default_domain_is_any(self):
        assert Attribute("A").domain is ANY

    def test_empty_name_rejected(self):
        with pytest.raises(DomainError):
            Attribute("")

    def test_validate_mentions_attribute(self):
        a = Attribute("Year", Domain("Y", base_type=int))
        with pytest.raises(DomainError, match="Year"):
            a.validate("not-a-year")

    def test_renamed_keeps_domain(self):
        d = Domain("D", base_type=str)
        a = Attribute("A", d).renamed("B")
        assert a.name == "B"
        assert a.domain is d

    def test_attributes_are_value_objects(self):
        assert Attribute("A") == Attribute("A")
        assert hash(Attribute("A")) == hash(Attribute("A"))
