"""Tests for repro.query.evaluator and catalog."""

import pytest

from repro.core.canonical import canonical_form
from repro.core.nfr_relation import NFRelation
from repro.errors import (
    CatalogError,
    EvaluationError,
    FlatTupleNotFoundError,
)
from repro.query import Catalog, run
from repro.relational.relation import Relation
from repro.relational.tuples import FlatTuple


@pytest.fixture
def rel():
    return Relation.from_rows(
        ["Student", "Course", "Club"],
        [
            ("s1", "c1", "b1"),
            ("s1", "c2", "b1"),
            ("s2", "c1", "b2"),
            ("s2", "c2", "b2"),
        ],
    )


@pytest.fixture
def catalog(rel):
    cat = Catalog()
    cat.register("R", rel, order=["Course", "Club", "Student"])
    return cat


class TestBasicOperators:
    def test_name_lookup(self, catalog, rel):
        out = run("R", catalog)
        assert out.to_1nf() == rel

    def test_unknown_name(self, catalog):
        with pytest.raises(CatalogError, match="catalog has"):
            run("Nope", catalog)

    def test_select_contains(self, catalog):
        out = run("SELECT R WHERE Student CONTAINS 's1'", catalog)
        assert out.flat_count == 2

    def test_select_singleton_equals(self, catalog):
        out = run("SELECT R WHERE Course = 'c1'", catalog)
        assert out.flat_count == 2

    def test_select_component_equals_after_nest(self, catalog):
        out = run(
            "SELECT (NEST R BY (Course)) WHERE Course = {'c1', 'c2'}",
            catalog,
        )
        assert out.cardinality == 2  # both students take both courses

    def test_project(self, catalog):
        out = run("PROJECT R ON (Student)", catalog)
        assert out.cardinality == 2

    def test_nest_then_unnest_roundtrip(self, catalog, rel):
        nested = run("NEST R BY (Course)", catalog)
        flat = run("UNNEST (NEST R BY (Course)) ON Course", catalog)
        assert nested.to_1nf() == rel
        assert flat.to_1nf() == rel

    def test_canonical(self, catalog, rel):
        out = run("CANONICAL R ORDER (Course, Club, Student)", catalog)
        assert out == canonical_form(rel, ["Course", "Club", "Student"])

    def test_flatten(self, catalog, rel):
        out = run("FLATTEN (NEST R BY (Course))", catalog)
        assert out == NFRelation.from_1nf(rel)


class TestJoins:
    def test_flatjoin(self, catalog):
        other = Relation.from_rows(
            ["Course", "Title"], [("c1", "DB"), ("c2", "OS")]
        )
        catalog.register("Courses", other)
        out = run("FLATJOIN R, Courses", catalog)
        assert out.schema.names == (
            "Student",
            "Course",
            "Club",
            "Title",
        )
        assert out.flat_count == 4

    def test_nf2_join_requires_component_equality(self, catalog):
        nested = run("LET N = NEST R BY (Course)", catalog)
        assert nested.cardinality == 2
        other = NFRelation.from_components(
            ["Course", "Semester"], [(["c1", "c2"], ["t1"])]
        )
        catalog.register("Sem", other)
        out = run("JOIN N, Sem", catalog)
        # both student tuples have Course = {c1, c2}, matching Sem's set
        assert out.cardinality == 2
        assert "Semester" in out.schema.names

    def test_nf2_join_no_shared_attributes_is_product(self, catalog):
        a = NFRelation.from_components(["X"], [(["x1"],), (["x2"],)])
        b = NFRelation.from_components(["Y"], [(["y1"],)])
        catalog.register("X1", a)
        catalog.register("Y1", b)
        assert run("JOIN X1, Y1", catalog).cardinality == 2


class TestSetOperators:
    def test_union(self, catalog):
        out = run("UNION R, R", catalog)
        assert out == run("R", catalog)

    def test_union_schema_mismatch(self, catalog):
        catalog.register(
            "Other", Relation.from_rows(["X"], [("x",)])
        )
        with pytest.raises(EvaluationError):
            run("UNION R, Other", catalog)

    def test_union_accepts_schema_permutation(self, catalog, rel):
        permuted = NFRelation.from_1nf(rel).reorder(
            ["Club", "Course", "Student"]
        )
        catalog.register("Perm", permuted)
        out = run("UNION R, Perm", catalog)
        assert out.schema.names == rel.schema.names
        assert out.to_1nf() == rel

    def test_difference_accepts_schema_permutation(self, catalog, rel):
        permuted = NFRelation.from_1nf(rel).reorder(
            ["Club", "Course", "Student"]
        )
        catalog.register("Perm", permuted)
        out = run("DIFFERENCE R, Perm", catalog)
        assert out.flat_count == 0

    def test_difference(self, catalog):
        out = run(
            "DIFFERENCE R, (SELECT R WHERE Student CONTAINS 's1')",
            catalog,
        )
        assert out.flat_count == 2
        assert all("s2" in t["Student"] for t in out)


class TestStatements:
    def test_let_binds(self, catalog):
        run("LET Nested = NEST R BY (Course)", catalog)
        assert "Nested" in catalog
        assert run("Nested", catalog).cardinality == 2

    def test_insert_maintains_canonical(self, catalog):
        out = run("INSERT INTO R VALUES ('s3', 'c1', 'b1')", catalog)
        store = catalog.store_for("R")
        assert store.is_canonical()
        assert out.flat_count == 5

    def test_delete_maintains_canonical(self, catalog):
        run("DELETE FROM R VALUES ('s1', 'c1', 'b1')", catalog)
        store = catalog.store_for("R")
        assert store.is_canonical()
        assert store.to_1nf().cardinality == 3

    def test_insert_then_query_sees_new_data(self, catalog):
        run("INSERT INTO R VALUES ('s9', 'c9', 'b9')", catalog)
        out = run("SELECT R WHERE Student CONTAINS 's9'", catalog)
        assert out.flat_count == 1

    def test_statements_hit_the_paged_store(self, catalog):
        """INSERT/DELETE execute against the paged NFRStore: records
        land on pages, page I/O is accounted, and a deleted flat is
        gone from both lookup strategies."""
        run("INSERT INTO R VALUES ('s3', 'c1', 'b1')", catalog)
        store = catalog.store_for("R")
        assert store.heap.record_count == store.relation.cardinality
        assert catalog.last_io is not None
        assert catalog.last_io.page_writes >= 1
        assert catalog.last_io.records_visited >= 1

        run("DELETE FROM R VALUES ('s3', 'c1', 'b1')", catalog)
        flat = FlatTuple(store.schema, ["s3", "c1", "b1"])
        assert not store.contains(flat)[0]
        conditions = [(a, flat[a]) for a in store.schema.names]
        assert flat not in store.lookup(conditions, use_index=True)[0]
        assert flat not in store.lookup(conditions, use_index=False)[0]

    def test_statements_in_1nf_mode(self, rel):
        cat = Catalog()
        cat.register("F", rel, mode="1nf")
        run("INSERT INTO F VALUES ('s7', 'c7', 'b7')", cat)
        assert run("F", cat).flat_count == 5
        run("DELETE FROM F VALUES ('s7', 'c7', 'b7')", cat)
        store = cat.store_for("F")
        flat = FlatTuple(store.schema, ["s7", "c7", "b7"])
        assert not store.contains(flat)[0]
        conditions = [(a, flat[a]) for a in store.schema.names]
        assert flat not in store.lookup(conditions, use_index=True)[0]
        assert flat not in store.lookup(conditions, use_index=False)[0]
        assert run("F", cat).to_1nf() == rel

    def test_delete_absent_tuple_raises(self, catalog):
        with pytest.raises(FlatTupleNotFoundError):
            run("DELETE FROM R VALUES ('sZ', 'cZ', 'bZ')", catalog)


class TestCatalog:
    def test_register_and_names(self, rel):
        cat = Catalog()
        cat.register("A1", rel)
        assert cat.names() == ["A1"]
        assert len(cat) == 1

    def test_remove(self, rel):
        cat = Catalog()
        cat.register("A1", rel)
        cat.remove("A1")
        assert "A1" not in cat
        with pytest.raises(CatalogError):
            cat.remove("A1")

    def test_order_of_defaults_to_schema(self, rel):
        cat = Catalog()
        cat.register("A1", rel)
        assert cat.order_of("A1") == rel.schema.names

    def test_set_resets_store(self, catalog, rel):
        catalog.store_for("R")
        catalog.set("R", NFRelation.from_1nf(rel))
        # store must be rebuilt lazily after a set
        store = catalog.store_for("R")
        assert store.to_1nf() == rel

    def test_sync_without_store_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.sync_from_store("Nope")
