"""Tests for repro.core.irreducible (Definition 3, Examples 1-2)."""

import random

import pytest

from repro.core.irreducible import (
    enumerate_irreducible_forms,
    greedy_forms_sample,
    irreducible_cardinality_range,
    is_irreducible,
    minimum_irreducible,
    reduce_greedy,
    reducibility_witness,
)
from repro.core.nfr_relation import NFRelation
from repro.errors import NFRError
from repro.relational.relation import Relation


class TestIsIrreducible:
    def test_lifted_reducible_relation(self, small_ab):
        assert not is_irreducible(NFRelation.from_1nf(small_ab))

    def test_witness_returned(self, small_ab):
        witness = reducibility_witness(NFRelation.from_1nf(small_ab))
        assert witness is not None
        r, s, attr = witness
        assert attr in ("A", "B")

    def test_singleton_relation_irreducible(self):
        nfr = NFRelation.from_components(["A", "B"], [(["a"], ["b"])])
        assert is_irreducible(nfr)
        assert reducibility_witness(nfr) is None


class TestReduceGreedy:
    def test_result_is_irreducible(self, small_ab):
        assert is_irreducible(reduce_greedy(small_ab))

    def test_preserves_r_star(self, small_ab):
        assert reduce_greedy(small_ab).to_1nf() == small_ab

    def test_seeded_runs_reach_multiple_forms(self, small_ab):
        forms = set(greedy_forms_sample(small_ab, samples=20, seed=0))
        assert len(forms) >= 2  # Example 1: at least two irreducible forms

    def test_custom_chooser(self, small_ab):
        last = reduce_greedy(small_ab, chooser=lambda cands: len(cands) - 1)
        assert is_irreducible(last)


class TestEnumeration:
    def test_example1_exactly_two_forms(self, small_ab):
        forms = enumerate_irreducible_forms(small_ab)
        assert {f.cardinality for f in forms} == {2, 3}
        assert len(forms) == 2

    def test_all_enumerated_forms_irreducible_and_equivalent(self, small_ab):
        for form in enumerate_irreducible_forms(small_ab):
            assert is_irreducible(form)
            assert form.to_1nf() == small_ab

    def test_state_limit_enforced(self, product_abc):
        with pytest.raises(NFRError):
            enumerate_irreducible_forms(product_abc, state_limit=2)

    def test_cardinality_range(self, small_ab):
        assert irreducible_cardinality_range(small_ab) == (2, 3)


class TestMinimum:
    def test_example2_minimum_is_three(self):
        from repro.workloads.paper_examples import EXAMPLE2_R3

        minimal = minimum_irreducible(EXAMPLE2_R3)
        assert minimal.cardinality == 3

    def test_minimum_deterministic(self, small_ab):
        assert minimum_irreducible(small_ab) == minimum_irreducible(small_ab)

    def test_irreducible_local_not_global(self, small_ab):
        """Definition 3's caveat: "the number of tuples is minimal in a
        sense though it may not be minimum" — the greedy reduction can
        land on the 3-tuple form while the minimum is 2."""
        sizes = {
            reduce_greedy(small_ab, rng=random.Random(seed)).cardinality
            for seed in range(20)
        }
        assert 3 in sizes  # some greedy runs land on the non-minimum
        assert minimum_irreducible(small_ab).cardinality == 2
