"""Property-based tests for the §4 update algorithms.

The central property — stronger than the paper's elided proofs — is that
the maintained store always equals the from-scratch canonical form after
any sequence of inserts and deletes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.canonical import canonical_form
from repro.core.update import CanonicalNFR
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema
from repro.relational.tuples import FlatTuple

ATTRS = ["A", "B", "C"]
SCHEMA = RelationSchema(ATTRS)


def flat(values):
    return FlatTuple(SCHEMA, list(values))


rows = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=3),
)


@st.composite
def update_scenarios(draw):
    """An initial relation plus an interleaved update script."""
    initial = draw(st.lists(rows, min_size=0, max_size=8))
    script = draw(
        st.lists(
            st.tuples(st.sampled_from(["insert", "delete"]), rows),
            min_size=1,
            max_size=12,
        )
    )
    order = draw(st.permutations(ATTRS))
    return initial, script, list(order)


class TestMaintenanceEqualsRenest:
    @given(update_scenarios())
    @settings(max_examples=120, deadline=None)
    def test_interleaved_updates(self, scenario):
        initial, script, order = scenario
        relation = Relation.from_rows(SCHEMA, initial)
        store = CanonicalNFR(relation, order)
        shadow = set(relation.tuples)
        for action, values in script:
            f = flat(values)
            if action == "insert":
                inserted = store.insert_flat(f)
                assert inserted == (f not in shadow)
                shadow.add(f)
            else:
                if f in shadow:
                    store.delete_flat(f)
                    shadow.discard(f)
                else:
                    try:
                        store.delete_flat(f)
                        raise AssertionError("expected delete to fail")
                    except Exception:
                        pass
            expected = canonical_form(
                Relation(SCHEMA, shadow), order
            )
            assert store.relation == expected, (
                action,
                values,
                store.relation.to_table(),
                expected.to_table(),
            )

    @given(update_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_r_star_tracks_shadow_set(self, scenario):
        initial, script, order = scenario
        relation = Relation.from_rows(SCHEMA, initial)
        store = CanonicalNFR(relation, order)
        shadow = set(relation.tuples)
        for action, values in script:
            f = flat(values)
            if action == "insert":
                store.insert_flat(f)
                shadow.add(f)
            elif f in shadow:
                store.delete_flat(f)
                shadow.discard(f)
        assert set(store.to_1nf().tuples) == shadow

    @given(
        st.lists(rows, min_size=1, max_size=8),
        st.permutations(ATTRS),
    )
    @settings(max_examples=60, deadline=None)
    def test_build_by_insertion_equals_batch_canonical(self, data, order):
        """Inserting flats one by one into an empty store yields exactly
        the canonical form of the whole set."""
        empty = Relation(SCHEMA)
        store = CanonicalNFR(empty, list(order))
        for values in data:
            store.insert_flat(flat(values))
        expected = canonical_form(
            Relation.from_rows(SCHEMA, data), list(order)
        )
        assert store.relation == expected

    @given(
        st.lists(rows, min_size=1, max_size=8, unique=True),
        st.permutations(ATTRS),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_drain_by_deletion_reaches_empty(self, data, order, rng):
        relation = Relation.from_rows(SCHEMA, data)
        store = CanonicalNFR(relation, list(order))
        flats = list(relation.tuples)
        rng.shuffle(flats)
        for f in flats:
            store.delete_flat(f)
        assert store.cardinality == 0
