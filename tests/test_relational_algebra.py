"""Tests for repro.relational.algebra."""

import pytest

from repro.errors import AlgebraError
from repro.relational import algebra as ra
from repro.relational.predicates import eq
from repro.relational.relation import Relation


@pytest.fixture
def r():
    return Relation.from_rows(
        ["A", "B"], [("a1", "b1"), ("a1", "b2"), ("a2", "b1")]
    )


@pytest.fixture
def s():
    return Relation.from_rows(
        ["B", "C"], [("b1", "c1"), ("b2", "c1"), ("b3", "c2")]
    )


class TestUnary:
    def test_select(self, r):
        assert len(ra.select(r, eq("A", "a1"))) == 2

    def test_project_collapses_duplicates(self, r):
        assert len(ra.project(r, ["A"])) == 2

    def test_rename(self, r):
        out = ra.rename(r, {"A": "X"})
        assert out.schema.names == ("X", "B")
        assert out.column("X") == {"a1", "a2"}

    def test_reorder(self, r):
        out = ra.reorder(r, ["B", "A"])
        assert out.schema.names == ("B", "A")
        assert len(out) == len(r)

    def test_extend(self, r):
        out = ra.extend(r, "AB", lambda t: t["A"] + t["B"])
        assert "a1b1" in out.column("AB")

    def test_extend_existing_name_rejected(self, r):
        with pytest.raises(AlgebraError):
            ra.extend(r, "A", lambda t: "x")


class TestSetOps:
    def test_union(self, r):
        other = Relation.from_rows(["A", "B"], [("a9", "b9"), ("a1", "b1")])
        assert len(ra.union(r, other)) == 4

    def test_difference(self, r):
        other = Relation.from_rows(["A", "B"], [("a1", "b1")])
        assert len(ra.difference(r, other)) == 2

    def test_intersection(self, r):
        other = Relation.from_rows(["A", "B"], [("a1", "b1"), ("a9", "b9")])
        assert len(ra.intersection(r, other)) == 1

    def test_incompatible_schemas_raise(self, r, s):
        with pytest.raises(AlgebraError):
            ra.union(r, s)


class TestJoins:
    def test_product(self, r):
        other = Relation.from_rows(["C"], [("c1",), ("c2",)])
        assert len(ra.product(r, other)) == 6

    def test_product_shared_names_rejected(self, r):
        with pytest.raises(Exception):
            ra.product(r, r)

    def test_natural_join(self, r, s):
        out = ra.natural_join(r, s)
        assert out.schema.names == ("A", "B", "C")
        assert len(out) == 3  # b3 never matches

    def test_natural_join_no_shared_is_product(self, r):
        other = Relation.from_rows(["C"], [("c1",)])
        assert len(ra.natural_join(r, other)) == 3

    def test_theta_join(self, r, s):
        renamed = ra.rename(s, {"B": "B2"})
        out = ra.theta_join(r, renamed, lambda lt, rt: lt["B"] == rt["B2"])
        assert len(out) == 3

    def test_semi_join(self, r, s):
        out = ra.semi_join(r, s)
        assert out == r  # every B value of r appears in s

    def test_anti_join(self, r, s):
        extra = Relation.from_rows(["A", "B"], [("a9", "bZ")])
        out = ra.anti_join(ra.union(r, extra), s)
        assert out == extra

    def test_division(self):
        dividend = Relation.from_rows(
            ["S", "P"],
            [("s1", "p1"), ("s1", "p2"), ("s2", "p1")],
        )
        divisor = Relation.from_rows(["P"], [("p1",), ("p2",)])
        out = ra.division(dividend, divisor)
        assert out.column("S") == {"s1"}

    def test_division_by_empty_returns_all(self):
        dividend = Relation.from_rows(["S", "P"], [("s1", "p1")])
        divisor = Relation(Relation.from_rows(["P"], [("p1",)]).schema)
        assert ra.division(dividend, divisor).column("S") == {"s1"}

    def test_division_missing_attribute_rejected(self, r):
        divisor = Relation.from_rows(["Z"], [("z",)])
        with pytest.raises(AlgebraError):
            ra.division(r, divisor)


class TestGrouping:
    def test_group_by(self, r):
        groups = ra.group_by(r, ["A"])
        assert len(groups[("a1",)]) == 2

    def test_aggregate(self, r):
        out = ra.aggregate(r, ["A"], "n", lambda g: len(list(g)))
        values = {t["A"]: t["n"] for t in out}
        assert values == {"a1": 2, "a2": 1}


class TestAlgebraicIdentities:
    def test_join_after_project_roundtrip_lossless_case(self, r, s):
        joined = ra.natural_join(r, s)
        left = ra.project(joined, ["A", "B"])
        assert left.is_subset_of(r)

    def test_select_commutes_with_project(self, r):
        a = ra.project(ra.select(r, eq("A", "a1")), ["A"])
        b = ra.select(ra.project(r, ["A"]), eq("A", "a1"))
        assert a == b
