"""Durable databases: ``connect(path)``, reopen fidelity, WAL crash
recovery, buffer-pool behaviour, and the crash-at-every-I/O-boundary
property test (fault-injecting FileManager/WAL hooks).

The contract: committed state survives anything — clean close, killed
process, power loss at any single physical I/O boundary — and
uncommitted state survives nothing.  Reopen never sees a torn page
(page CRCs + WAL frame CRCs turn torn writes into recoverable events,
not silent corruption).
"""

import os

import pytest

import repro.db
from repro.errors import StorageError
from repro.relational.relation import Relation
from repro.storage.pages import PAGE_SIZE, Page
from repro.workloads.paper_examples import FIG1_R1


def _rel():
    return Relation.from_rows(
        ["A", "B"],
        [("a1", "b1"), ("a2", "b2"), ("a2", "b3")],
    )


def _flats(conn, name="E"):
    """Canonical, comparable snapshot of a relation's information
    content (R* as sorted value tuples)."""
    rel = conn.execute(f"FLATTEN {name}").result_relation()
    return tuple(
        sorted(tuple(t.values) for t in rel.to_1nf().sorted_tuples())
    )


def _snapshot(conn, name="E"):
    if name not in conn.catalog:
        return None
    return _flats(conn, name)


class TestConnectPath:
    def test_reopen_returns_byte_identical_results(self, tmp_path):
        path = tmp_path / "x.db"
        conn = repro.db.connect(path)
        conn.database.register(
            "Enrollment", FIG1_R1, order=["Course", "Club", "Student"]
        )
        conn.execute("BEGIN")
        conn.execute("INSERT INTO Enrollment VALUES ('c1', 'b1', 's9')")
        conn.execute("COMMIT")
        query = "SELECT Enrollment WHERE Club CONTAINS 'b1'"
        rows_before = sorted(map(repr, conn.execute(query).fetchall()))
        table_before = conn.execute("Enrollment").table()
        conn.database.close()

        conn2 = repro.db.connect(str(path))
        rows_after = sorted(map(repr, conn2.execute(query).fetchall()))
        table_after = conn2.execute("Enrollment").table()
        assert rows_after == rows_before
        assert table_after == table_before
        assert conn2.catalog.order_of("Enrollment") == (
            "Course", "Club", "Student",
        )
        assert conn2.catalog.mode_of("Enrollment") == "nfr"
        conn2.database.close()

    def test_connect_no_path_stays_in_memory(self, tmp_path):
        conn = repro.db.connect()
        assert not conn.database.durable
        assert conn.database.path is None
        conn.database.register("E", _rel())
        conn.execute("INSERT INTO E VALUES ('a9', 'b9')")
        assert list(os.listdir(tmp_path)) == []
        conn.database.close()

    def test_autocommit_statement_is_durable(self, tmp_path):
        path = tmp_path / "auto.db"
        conn = repro.db.connect(path)
        conn.database.register("E", _rel())
        conn.execute("INSERT INTO E VALUES ('a7', 'b7')")  # no BEGIN
        state = _flats(conn)
        conn.database.close()
        conn2 = repro.db.connect(path)
        assert _flats(conn2) == state
        assert ("a7", "b7") in _flats(conn2)
        conn2.database.close()

    def test_let_binding_nesting_survives_reopen(self, tmp_path):
        path = tmp_path / "let.db"
        conn = repro.db.connect(path)
        conn.database.register(
            "Enrollment", FIG1_R1, order=["Course", "Club", "Student"]
        )
        conn.execute("LET Flat = FLATTEN Enrollment")
        before = conn.execute("Flat").result_relation()
        assert all(t.is_all_singleton() for t in before)
        conn.database.close()
        conn2 = repro.db.connect(path)
        after = conn2.execute("Flat").result_relation()
        assert after == before  # all-singleton nesting kept verbatim
        conn2.database.close()

    def test_wal_empty_and_pages_valid_after_close(self, tmp_path):
        path = tmp_path / "clean.db"
        conn = repro.db.connect(path)
        conn.database.register("E", _rel())
        conn.execute("INSERT INTO E VALUES ('a5', 'b5')")
        store = conn.catalog.store_if_open("E")
        heap_pages = store.heap.page_ids()
        conn.database.close()
        assert os.path.getsize(f"{path}-wal") == 0
        # every heap page image round-trips at exactly PAGE_SIZE
        data = (tmp_path / "clean.db").read_bytes()
        assert len(data) % PAGE_SIZE == 0
        for pid in heap_pages:
            image = data[pid * PAGE_SIZE : (pid + 1) * PAGE_SIZE]
            assert len(image) == PAGE_SIZE
            page = Page.from_bytes(image, pid)
            assert page.to_bytes() == image

    def test_executemany_durable(self, tmp_path):
        path = tmp_path / "many.db"
        conn = repro.db.connect(path)
        conn.database.register("E", _rel())
        conn.executemany(
            "INSERT INTO E VALUES (?, ?)",
            [(f"a{i}", f"b{i}") for i in range(10, 40)],
        )
        state = _flats(conn)
        conn.database.close()
        conn2 = repro.db.connect(path)
        assert _flats(conn2) == state
        conn2.database.close()

    def test_vacuum_then_reopen(self, tmp_path):
        path = tmp_path / "vac.db"
        conn = repro.db.connect(path)
        conn.database.register("E", _rel())
        for i in range(50):
            conn.execute(f"INSERT INTO E VALUES ('x{i}', 'y{i}')")
        for i in range(0, 50, 2):
            conn.execute(f"DELETE FROM E VALUES ('x{i}', 'y{i}')")
        store = conn.catalog.store_for("E")
        store.vacuum()
        conn.execute("INSERT INTO E VALUES ('post', 'vacuum')")
        state = _flats(conn)
        conn.database.close()
        conn2 = repro.db.connect(path)
        assert _flats(conn2) == state
        conn2.database.close()

    def test_rebind_checkpoint_then_allocate(self, tmp_path):
        """Regression: a rebound relation's old pages are swept free at
        checkpoint while their stale frames may still sit in the pool —
        allocating one of those ids must discard the stale frame, not
        collide with it."""
        path = tmp_path / "sweep.db"
        conn = repro.db.connect(path)
        conn.database.register("R", _rel())
        conn.database.register("R", _rel())  # rebind: drops the store
        conn.database.checkpoint()           # sweep frees the old pages
        conn.database.register("S", _rel())  # must reuse a freed id
        state_r, state_s = _flats(conn, "R"), _flats(conn, "S")
        conn.database.close()
        conn2 = repro.db.connect(path)
        assert _flats(conn2, "R") == state_r
        assert _flats(conn2, "S") == state_s
        conn2.database.close()

    def test_checkpoint_mid_session(self, tmp_path):
        path = tmp_path / "ckpt.db"
        conn = repro.db.connect(path)
        conn.database.register("E", _rel())
        conn.execute("INSERT INTO E VALUES ('a8', 'b8')")
        assert os.path.getsize(f"{path}-wal") > 0
        conn.database.checkpoint()
        assert os.path.getsize(f"{path}-wal") == 0
        conn.execute("INSERT INTO E VALUES ('a9', 'b9')")
        state = _flats(conn)
        conn.database.close()
        conn2 = repro.db.connect(path)
        assert _flats(conn2) == state
        conn2.database.close()

    def test_not_a_database_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.db"
        path.write_bytes(b"\x01" * (3 * PAGE_SIZE))
        with pytest.raises(StorageError):
            repro.db.connect(path)

    def test_existing_catalog_with_path_rejected(self, tmp_path):
        """A pre-built in-memory catalog's stores carry MemoryPager
        page ids that mean nothing in a database file — wrapping one
        durably would persist garbage extents."""
        from repro.db.exceptions import ProgrammingError
        from repro.query.catalog import Catalog

        cat = Catalog()
        cat.register("E", _rel())
        cat.store_for("E")
        with pytest.raises(ProgrammingError):
            repro.db.Database(catalog=cat, path=tmp_path / "wrap.db")


class TestCrashRecovery:
    def _crash(self, database):
        """Drop a database the way a killed process would: no
        checkpoint, no flush, file handles released."""
        database.engine.abandon()

    def test_committed_survives_crash_without_checkpoint(self, tmp_path):
        path = tmp_path / "c.db"
        conn = repro.db.connect(path)
        conn.database.register("E", _rel())
        conn.execute("BEGIN")
        conn.execute("INSERT INTO E VALUES ('a7', 'b7')")
        conn.execute("COMMIT")
        state = _flats(conn)
        self._crash(conn.database)

        conn2 = repro.db.connect(path)
        assert _flats(conn2) == state
        conn2.database.close()

    def test_uncommitted_rolled_back_on_crash(self, tmp_path):
        path = tmp_path / "u.db"
        conn = repro.db.connect(path)
        conn.database.register("E", _rel())
        conn.execute("INSERT INTO E VALUES ('keep', 'me')")
        committed = _flats(conn)
        conn.execute("BEGIN")
        conn.execute("INSERT INTO E VALUES ('lose', 'me')")
        conn.execute("DELETE FROM E VALUES ('keep', 'me')")
        assert _flats(conn) != committed  # visible pre-crash
        self._crash(conn.database)

        conn2 = repro.db.connect(path)
        assert _flats(conn2) == committed
        conn2.database.close()

    def test_explicit_rollback_then_crash(self, tmp_path):
        path = tmp_path / "r.db"
        conn = repro.db.connect(path)
        conn.database.register("E", _rel())
        conn.execute("BEGIN")
        conn.execute("INSERT INTO E VALUES ('ephemeral', 'x')")
        conn.execute("ROLLBACK")
        committed = _flats(conn)
        self._crash(conn.database)
        conn2 = repro.db.connect(path)
        assert _flats(conn2) == committed
        conn2.database.close()

    def test_double_crash_recovery_is_stable(self, tmp_path):
        path = tmp_path / "d.db"
        conn = repro.db.connect(path)
        conn.database.register("E", _rel())
        conn.execute("INSERT INTO E VALUES ('a6', 'b6')")
        state = _flats(conn)
        self._crash(conn.database)
        conn2 = repro.db.connect(path)
        assert _flats(conn2) == state
        self._crash(conn2.database)  # crash right after recovery
        conn3 = repro.db.connect(path)
        assert _flats(conn3) == state
        conn3.database.close()


class TestBufferPool:
    def test_warm_probe_reads_zero_disk_pages(self, tmp_path):
        """BUF-HIT: a repeated index probe on a warm pool performs no
        FileManager reads at all."""
        path = tmp_path / "hot.db"
        conn = repro.db.connect(path)
        conn.database.register(
            "Enrollment", FIG1_R1, order=["Course", "Club", "Student"]
        )
        conn.execute("ANALYZE Enrollment")
        query = "SELECT Enrollment WHERE Club CONTAINS 'b1'"
        conn.execute(query).fetchall()  # warm the pool
        filemgr = conn.database.engine.filemgr
        before = filemgr.stats.reads
        for _ in range(5):
            rows = conn.execute(query).fetchall()
            assert rows
        assert filemgr.stats.reads == before
        conn.database.close()

    def test_pool_smaller_than_relation_still_correct(self, tmp_path):
        path = tmp_path / "small.db"
        conn = repro.db.connect(path, frames=2)
        conn.database.register("E", _rel())
        # distinct values on both sides: nothing canonicalizes away,
        # so the relation really spans many pages
        conn.executemany(
            "INSERT INTO E VALUES (?, ?)",
            [(f"k{i:04d}", f"v{i:04d}" + "w" * 200) for i in range(200)],
        )
        state = _flats(conn)
        assert len(state) == 203
        store = conn.catalog.store_if_open("E")
        assert store.heap.page_count > 4  # really bigger than the pool
        pool = conn.database.engine.pool
        # during the batch every touched page is transaction-dirty, so
        # the pool must overflow (no-steal) rather than leak
        # uncommitted pages to the file
        assert pool.stats.overflows > 0
        conn.database.close()

        conn2 = repro.db.connect(path, frames=2)
        assert _flats(conn2) == state
        pool2 = conn2.database.engine.pool
        assert pool2.stats.evictions > 0  # budget enforced on the scan
        assert pool2.frame_count <= store.heap.page_count
        conn2.database.close()

    def test_explain_analyze_shows_disk_layer(self, tmp_path):
        path = tmp_path / "ex.db"
        conn = repro.db.connect(path, frames=2)
        conn.database.register("E", _rel())
        conn.executemany(
            "INSERT INTO E VALUES (?, ?)",
            [(f"k{i:04d}", f"v{i:04d}" + "w" * 300) for i in range(100)],
        )
        conn.database.close()
        # a 2-frame pool over a multi-page relation: the scan must go
        # to disk, and EXPLAIN ANALYZE must say so
        conn2 = repro.db.connect(path, frames=2)
        text = conn2.execute(
            "EXPLAIN ANALYZE SELECT E WHERE A CONTAINS 'k0001'"
        ).table()
        assert "disk reads=" in text
        conn2.database.close()

    def test_mutation_stats_report_wal_bytes(self, tmp_path):
        path = tmp_path / "ws.db"
        conn = repro.db.connect(path)
        conn.database.register("E", _rel())
        conn.execute("INSERT INTO E VALUES ('a4', 'b4')")
        io = conn.catalog.last_io
        assert io.wal_bytes > 0
        conn.database.close()


# -- crash-at-every-I/O-boundary property test --------------------------------


class SimulatedCrash(Exception):
    """Raised from the fault hook to emulate power loss."""


class FaultHook:
    """Counts physical I/O events; optionally crashes at event #k."""

    def __init__(self, crash_at: int | None = None):
        self.count = 0
        self.crash_at = crash_at

    def __call__(self, event: str, detail: int) -> None:
        if self.crash_at is not None and self.count >= self.crash_at:
            raise SimulatedCrash(f"{event}({detail}) @ {self.count}")
        self.count += 1


#: The scenario: (is_durability_boundary, action) pairs.  A boundary is
#: a point after which the state must survive any crash; inside an open
#: transaction nothing is a boundary until COMMIT.
def _scenario():
    return [
        (True, ("register",)),
        (True, ("stmt", "INSERT INTO E VALUES ('a3', 'b3')")),
        (False, ("stmt", "BEGIN")),
        (False, ("stmt", "INSERT INTO E VALUES ('a4', 'b4')")),
        (False, ("stmt", "DELETE FROM E VALUES ('a1', 'b1')")),
        (True, ("stmt", "COMMIT")),
        (False, ("stmt", "BEGIN")),
        (False, ("stmt", "DELETE FROM E VALUES ('a2', 'b2')")),
        (True, ("stmt", "ROLLBACK")),  # boundary: state == previous
        (True, ("stmt", "INSERT INTO E VALUES ('a5', 'b5')")),
        (True, ("close",)),
    ]


def _apply(action, database, conn):
    if action[0] == "register":
        database.register("E", _rel())
    elif action[0] == "stmt":
        conn.execute(action[1])
    else:
        database.close()


def _expected_states():
    """states[i] = committed information content after i completed
    boundaries (computed on the in-memory engine — the durable one must
    agree with it at every boundary)."""
    database = repro.db.Database()
    conn = database.connect()
    states = [None]  # before the first boundary: no relation at all
    for is_boundary, action in _scenario():
        if action[0] != "close":
            _apply(action, database, conn)
        if is_boundary:
            states.append(_snapshot(conn))
    return states


def _run_until_crash(path, crash_at):
    """Run the scenario against ``path`` crashing at I/O event
    ``crash_at``; returns (completed_boundaries, boundary_in_flight)."""
    hook = FaultHook(crash_at)
    completed = 0
    database = None
    try:
        database = repro.db.Database(path=path, _fault_hook=hook)
        conn = database.connect()
        for is_boundary, action in _scenario():
            _apply(action, database, conn)
            if is_boundary:
                completed += 1
        return completed, False
    except SimulatedCrash:
        if database is not None and database.engine is not None:
            database.engine.abandon()
        return completed, True


def test_crash_at_every_io_boundary(tmp_path):
    """Simulate power loss before every single physical I/O operation
    of the whole scenario.  After each crash, reopening must (a) not
    raise — no torn page ever surfaces, (b) observe exactly a
    committed-boundary state: at least everything up to the last
    completed boundary, at most one boundary further (the one whose
    durability point may or may not have been reached mid-crash)."""
    states = _expected_states()

    # Dry run: count every physical I/O event in the scenario.
    probe = tmp_path / "probe.db"
    hook = FaultHook(crash_at=None)
    database = repro.db.Database(path=probe, _fault_hook=hook)
    conn = database.connect()
    for _, action in _scenario():
        _apply(action, database, conn)
    total_ops = hook.count
    assert total_ops > 20  # the scenario really exercises the disk

    failures = []
    for k in range(total_ops):
        path = tmp_path / f"crash{k}.db"
        completed, in_flight = _run_until_crash(path, k)
        try:
            conn2 = repro.db.connect(path)
        except Exception as exc:  # noqa: BLE001 - recovery must not raise
            failures.append(f"crash@{k}: reopen raised {exc!r}")
            continue
        observed = _snapshot(conn2)
        allowed = [states[completed]]
        if in_flight and completed + 1 < len(states):
            allowed.append(states[completed + 1])
        if observed not in allowed:
            failures.append(
                f"crash@{k}: completed={completed} in_flight={in_flight} "
                f"observed={observed} allowed={allowed}"
            )
        conn2.database.close()
    assert not failures, "\n".join(failures)
