"""The concurrent tier: MVCC snapshot isolation, sessions, first-
writer-wins conflicts, group commit, and crash recovery around it.

Contract under test:

- every session reads a stable snapshot for the life of its
  transaction; committed writes become visible only to snapshots taken
  afterwards;
- of two concurrent conflicting writers the second loses immediately
  (``SerializationError``), is rolled back, and can retry;
- rollback leaves no trace — in memory or on disk;
- N concurrent durable committers share group fsyncs (fewer fsyncs
  than commits), and a crash mid-stream loses nothing that was
  committed and keeps nothing that was not.
"""

import threading

import pytest

import repro.db
from repro.db import SerializationError
from repro.errors import SerializationError as EngineSerializationError
from repro.relational.relation import Relation
from repro.workloads.paper_examples import FIG1_R1


def _fresh(path=None):
    database = (
        repro.db.Database() if path is None else repro.db.Database(path=path)
    )
    database.register(
        "Enrollment", FIG1_R1, order=["Course", "Club", "Student"]
    )
    return database


def _flats(session, name="Enrollment"):
    session.execute(f"FLATTEN {name}")
    return tuple(
        sorted(tuple(sorted(c)[0] for c in row) for row in session.fetchall())
    )


class TestSessionSurface:
    def test_query_description_and_rows(self):
        database = _fresh()
        with database.session() as s:
            s.execute("Enrollment")
            assert [c[0] for c in s.description] == [
                "Student", "Course", "Club",
            ]
            assert len(s.fetchall()) == 3
            assert s.fetchall() == []  # drained

    def test_dml_rowcount_and_duplicate_noop(self):
        database = _fresh()
        s = database.session()
        s.execute("INSERT INTO Enrollment VALUES ('s9', 'c9', 'b9')")
        assert s.rowcount == 1
        s.execute("INSERT INTO Enrollment VALUES ('s9', 'c9', 'b9')")
        assert s.rowcount == 0
        s.execute("DELETE FROM Enrollment VALUES ('s9', 'c9', 'b9')")
        assert s.rowcount == 1

    def test_delete_absent_is_integrity_error(self):
        database = _fresh()
        s = database.session()
        with pytest.raises(repro.db.IntegrityError):
            s.execute("DELETE FROM Enrollment VALUES ('zz', 'zz', 'zz')")

    def test_executemany_batches(self):
        database = _fresh()
        s = database.session()
        s.executemany(
            "INSERT INTO Enrollment VALUES (?, ?, ?)",
            [["m1", "c1", "b1"], ["m2", "c1", "b1"], ["m1", "c1", "b1"]],
        )
        assert s.rowcount == 2  # third row duplicates the first

    def test_let_explain_analyze_monitor(self):
        database = _fresh()
        s = database.session()
        s.execute("LET X = PROJECT Enrollment ON (Student, Club)")
        s.execute("X")
        assert len(s.fetchall()) == 3
        s.execute("EXPLAIN Enrollment")
        assert "QUERY PLAN" in s.fetchone()[0]
        s.execute("ANALYZE Enrollment")
        assert "ANALYZE Enrollment" in s.fetchone()[0]
        s.execute("MONITOR metrics")
        assert s.fetchone() is not None

    def test_closed_session_rejects_execution(self):
        database = _fresh()
        s = database.session()
        s.close()
        with pytest.raises(repro.db.InterfaceError):
            s.execute("Enrollment")

    def test_transaction_statement_misuse(self):
        database = _fresh()
        s = database.session()
        with pytest.raises(repro.db.OperationalError):
            s.execute("COMMIT")
        s.execute("BEGIN")
        with pytest.raises(repro.db.OperationalError):
            s.execute("BEGIN")
        s.execute("ROLLBACK")

    def test_session_close_rolls_back_open_transaction(self):
        database = _fresh()
        s = database.session()
        s.execute("BEGIN")
        s.execute("INSERT INTO Enrollment VALUES ('zz', 'c1', 'b1')")
        s.close()
        check = database.session()
        check.execute("SELECT Enrollment WHERE Student CONTAINS 'zz'")
        assert check.fetchall() == []


class TestSnapshotIsolation:
    def test_reader_snapshot_is_stable(self):
        database = _fresh()
        reader, writer = database.session(), database.session()
        reader.execute("BEGIN")
        before = _flats(reader)
        writer.execute("INSERT INTO Enrollment VALUES ('q1', 'c1', 'b1')")
        assert _flats(reader) == before  # still the old snapshot
        reader.execute("COMMIT")
        assert _flats(reader) != before  # new snapshot sees the commit

    def test_own_writes_visible_before_commit(self):
        database = _fresh()
        s, other = database.session(), database.session()
        s.execute("BEGIN")
        s.execute("INSERT INTO Enrollment VALUES ('q2', 'c1', 'b1')")
        s.execute("SELECT Enrollment WHERE Student CONTAINS 'q2'")
        assert len(s.fetchall()) == 1
        other.execute("SELECT Enrollment WHERE Student CONTAINS 'q2'")
        assert other.fetchall() == []  # no dirty reads
        s.execute("ROLLBACK")

    def test_rollback_leaves_no_trace_in_memory(self):
        database = _fresh()
        s = database.session()
        baseline = _flats(s)
        s.execute("BEGIN")
        s.execute("INSERT INTO Enrollment VALUES ('t1', 'c9', 'b9')")
        s.execute("DELETE FROM Enrollment VALUES ('s1', 'c1', 'b1')")
        s.execute("LET Enrollment = PROJECT Enrollment ON (Student, Course, Club)")
        s.execute("ROLLBACK")
        assert _flats(s) == baseline
        assert database.transactions.rollbacks_total >= 1

    def test_let_binding_is_transactional(self):
        database = _fresh()
        s, other = database.session(), database.session()
        s.execute("BEGIN")
        s.execute("LET Derived = PROJECT Enrollment ON (Student)")
        s.execute("Derived")
        assert len(s.fetchall()) == 3
        with pytest.raises(repro.errors.CatalogError):
            other.execute("Derived")  # not committed yet
        s.execute("COMMIT")
        other.execute("Derived")
        assert len(other.fetchall()) == 3


class TestFirstWriterWins:
    def test_key_conflict_loser_rolls_back_and_retries(self):
        database = _fresh()
        a, b = database.session(), database.session()
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("INSERT INTO Enrollment VALUES ('w1', 'c1', 'b1')")
        with pytest.raises(SerializationError):
            b.execute("INSERT INTO Enrollment VALUES ('w1', 'c1', 'b1')")
        assert not b.in_transaction  # loser was rolled back
        a.execute("COMMIT")
        # retry after the winner committed: now a no-op duplicate
        b.execute("INSERT INTO Enrollment VALUES ('w1', 'c1', 'b1')")
        assert b.rowcount == 0

    def test_relation_lock_conflicts_with_tuple_lock(self):
        database = _fresh()
        a, b = database.session(), database.session()
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("INSERT INTO Enrollment VALUES ('w2', 'c1', 'b1')")
        with pytest.raises(SerializationError):
            b.execute("LET Enrollment = PROJECT Enrollment ON (Student, Course, Club)")
        a.execute("COMMIT")

    def test_tuple_lock_conflicts_with_relation_lock(self):
        database = _fresh()
        a, b = database.session(), database.session()
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("LET Enrollment = PROJECT Enrollment ON (Student, Course, Club)")
        with pytest.raises(SerializationError):
            b.execute("INSERT INTO Enrollment VALUES ('w3', 'c1', 'b1')")
        a.execute("ROLLBACK")

    def test_stale_snapshot_write_conflicts_after_commit(self):
        # No lock overlap in time: the winner commits before the loser
        # even tries — the CSN stamp catches it.
        database = _fresh()
        a, b = database.session(), database.session()
        b.execute("BEGIN")
        b.execute("Enrollment")  # take the snapshot now
        a.execute("DELETE FROM Enrollment VALUES ('s1', 'c1', 'b1')")
        with pytest.raises(SerializationError):
            b.execute("DELETE FROM Enrollment VALUES ('s1', 'c1', 'b1')")

    def test_disjoint_writers_both_commit(self):
        database = _fresh()
        a, b = database.session(), database.session()
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("INSERT INTO Enrollment VALUES ('da', 'c1', 'b1')")
        b.execute("INSERT INTO Enrollment VALUES ('db', 'c1', 'b1')")
        a.execute("COMMIT")
        b.execute("COMMIT")
        check = database.session()
        check.execute("SELECT Enrollment WHERE Course CONTAINS 'c1'")
        rows = check.fetchall()
        students = set().union(*(set(r[0]) for r in rows))
        assert {"da", "db"} <= students

    def test_conflict_metrics_flow(self):
        database = _fresh()
        a, b = database.session(), database.session()
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("INSERT INTO Enrollment VALUES ('m1', 'c1', 'b1')")
        with pytest.raises(SerializationError):
            b.execute("INSERT INTO Enrollment VALUES ('m1', 'c1', 'b1')")
        a.execute("COMMIT")
        metrics = database.metrics()
        assert metrics["repro_txn_conflicts_total"]["values"][""] >= 1
        assert metrics["repro_txn_commits_total"]["values"][""] >= 1


class TestManagerDirect:
    def test_commit_csn_orders_committed_transactions(self):
        database = _fresh()
        manager = database.transactions
        t1, t2 = manager.begin(), manager.begin()
        t1.insert("Enrollment", ["x1", "c1", "b1"])
        t2.insert("Enrollment", ["x2", "c1", "b1"])
        manager.commit(t2)
        manager.commit(t1)
        assert t2.commit_csn is not None and t1.commit_csn is not None
        assert t2.commit_csn < t1.commit_csn

    def test_read_only_commit_consumes_no_csn(self):
        database = _fresh()
        manager = database.transactions
        before = manager.csn
        txn = manager.begin()
        txn.read_entry("Enrollment")
        manager.commit(txn)
        assert manager.csn == before
        assert txn.commit_csn is None

    def test_double_commit_rejected(self):
        database = _fresh()
        manager = database.transactions
        txn = manager.begin()
        manager.commit(txn)
        with pytest.raises(repro.errors.TransactionError):
            manager.commit(txn)

    def test_version_history_prunes_to_live(self):
        database = _fresh()
        manager = database.transactions
        s = database.session()
        for i in range(5):
            s.execute(
                "INSERT INTO Enrollment VALUES (?, ?, ?)",
                [f"p{i}", "c1", "b1"],
            )
        # No active snapshots: history collapses back to lazy baselines.
        assert manager._history == {}
        reader = database.session()
        reader.execute("BEGIN")
        reader.execute("Enrollment")
        s.execute("INSERT INTO Enrollment VALUES ('p9', 'c1', 'b1')")
        assert len(manager._history["Enrollment"]) == 2
        reader.execute("COMMIT")

    def test_engine_conflict_error_is_transaction_error(self):
        # SerializationError must stay inside the engine hierarchy so
        # blanket `except ReproError` callers keep working.
        assert issubclass(
            EngineSerializationError, repro.errors.TransactionError
        )
        assert issubclass(SerializationError, repro.db.OperationalError)


class TestGroupCommit:
    def test_concurrent_commits_share_fsyncs(self, tmp_path):
        database = _fresh(str(tmp_path / "g.db"))
        wal = database.engine.wal
        syncs0, commits0 = wal.syncs, wal.commits

        def worker(i):
            s = database.session()
            for j in range(10):
                s.execute(
                    "INSERT INTO Enrollment VALUES (?, ?, ?)",
                    [f"t{i}_{j}", "c1", "b1"],
                )
            s.close()

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        commits = wal.commits - commits0
        syncs = wal.syncs - syncs0
        assert commits == 80
        assert syncs < commits, "group commit must batch fsyncs"
        coalescer = database.transactions.coalescer
        assert coalescer.commits_synced == commits
        assert coalescer.groups == syncs
        metrics = database.metrics()
        hist = metrics["repro_group_commit_size"]
        assert hist["count"] == syncs
        assert hist["sum"] == commits
        database.close()

    def test_gather_window_still_commits_everything(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_GROUP_WINDOW_US", "2000")
        database = _fresh(str(tmp_path / "gw.db"))
        coalescer = database.transactions.coalescer
        assert coalescer._window_s == pytest.approx(0.002)
        wal = database.engine.wal
        syncs0, commits0 = wal.syncs, wal.commits

        def worker(i):
            s = database.session()
            for j in range(5):
                s.execute(
                    "INSERT INTO Enrollment VALUES (?, ?, ?)",
                    [f"w{i}_{j}", "c1", "b1"],
                )
            s.close()

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert wal.commits - commits0 == 20
        assert wal.syncs - syncs0 < 20
        check = database.session()
        assert len(_flats(check)) >= 20
        check.close()
        database.close()

    def test_group_committed_state_survives_reopen(self, tmp_path):
        path = str(tmp_path / "g2.db")
        database = _fresh(path)

        def worker(i):
            s = database.session()
            for j in range(5):
                s.execute(
                    "INSERT INTO Enrollment VALUES (?, ?, ?)",
                    [f"d{i}_{j}", "c1", "b1"],
                )
            s.close()

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        check = database.session()
        expected = _flats(check)
        check.close()
        database.close()

        reopened = repro.db.Database(path=path)
        check = reopened.session()
        assert _flats(check) == expected
        reopened.close()


class SimulatedCrash(Exception):
    pass


class CrashHook:
    """Counts physical I/O events; every event from #crash_at on
    raises (the device is gone)."""

    def __init__(self):
        self.count = 0
        self.crash_at = None

    def __call__(self, event, detail):
        if self.crash_at is not None and self.count >= self.crash_at:
            raise SimulatedCrash(f"{event}({detail}) @ {self.count}")
        self.count += 1


class TestCrashDuringGroupCommit:
    def test_committed_group_survives_uncommitted_tail_does_not(
        self, tmp_path
    ):
        path = str(tmp_path / "c.db")
        hook = CrashHook()
        database = repro.db.Database(path=path, _fault_hook=hook)
        database.register(
            "Enrollment", FIG1_R1, order=["Course", "Club", "Student"]
        )

        # A concurrent group of committers, all successful.
        def worker(i):
            s = database.session()
            for j in range(5):
                s.execute(
                    "INSERT INTO Enrollment VALUES (?, ?, ?)",
                    [f"g{i}_{j}", "c1", "b1"],
                )
            s.close()

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        survivor = database.session()
        expected = _flats(survivor)
        survivor.close()

        # An uncommitted tail: an open transaction's buffered writes...
        tail = database.session()
        tail.execute("BEGIN")
        tail.execute("INSERT INTO Enrollment VALUES ('lost1', 'c1', 'b1')")

        # ...and a commit that dies at its first physical write.
        hook.crash_at = hook.count
        dying = database.session()
        with pytest.raises(SimulatedCrash):
            dying.execute(
                "INSERT INTO Enrollment VALUES ('lost2', 'c1', 'b1')"
            )
        database.engine.abandon()

        reopened = repro.db.Database(path=path)
        check = reopened.session()
        recovered = _flats(check)
        assert recovered == expected
        flat_values = {v for row in recovered for v in row}
        assert "lost1" not in flat_values
        assert "lost2" not in flat_values
        reopened.close()
