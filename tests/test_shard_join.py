"""Shard-local joins and the persistent worker pool.

The invariants of PR 10's scale-out joins: a join executed inside the
shard workers (co-partitioned or broadcast) returns exactly what the
coordinator join returns, which in turn matches the naive AST
interpreter — for any rows, any shard count, both join flavours.  The
worker pool underneath must be reused across queries, regenerate after
DML (the fork snapshot went stale), survive worker death and abandoned
streams by respawning, and die with the catalog.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.planner import plan
from repro.planner.physical import ParallelShardFlatJoin, ParallelShardJoin
from repro.query import Catalog, evaluate_naive, parse, run
from repro.relational.relation import Relation

JOIN_ATTRS = ["J", "A"]
RIGHT_ATTRS = ["J", "B"]
JOIN_ATOMS = ["j1", "j2", "j3", "j4"]
PAYLOAD_ATOMS = ["x1", "x2", "y1", 1, 2]

left_rows = st.lists(
    st.tuples(st.sampled_from(JOIN_ATOMS), st.sampled_from(PAYLOAD_ATOMS)),
    min_size=1,
    max_size=8,
).map(lambda rows: sorted(set(rows), key=repr))
right_rows = left_rows


def _catalogs(rows_l, rows_r, nshards, analyze=True):
    """(plain, sharded) catalogs holding the same R and S, both
    partitioned on the shared attribute J (the first order attr)."""
    left = Relation.from_rows(JOIN_ATTRS, rows_l)
    right = Relation.from_rows(RIGHT_ATTRS, rows_r)
    plain = Catalog()
    plain.register("R", left, order=JOIN_ATTRS)
    plain.register("S", right, order=RIGHT_ATTRS)
    sharded = Catalog()
    sharded.default_shards = nshards
    sharded.register("R", left, order=JOIN_ATTRS)
    sharded.register("S", right, order=RIGHT_ATTRS)
    if analyze:
        run("ANALYZE R", plain)
        run("ANALYZE S", plain)
        run("ANALYZE R", sharded)
        run("ANALYZE S", sharded)
    return plain, sharded


def _with_parallel(value, fn):
    saved = os.environ.get("REPRO_PARALLEL")
    os.environ["REPRO_PARALLEL"] = value
    try:
        return fn()
    finally:
        if saved is None:
            del os.environ["REPRO_PARALLEL"]
        else:
            os.environ["REPRO_PARALLEL"] = saved


def _forced_parallel(fn):
    return _with_parallel("1", fn)


def _serial(fn):
    return _with_parallel("0", fn)


def _bulk_catalog(nshards=4, nrows=240, small=0):
    """A sharded catalog big enough that the cost model picks the
    shard-local join.  ``small`` additionally registers a tiny,
    *unsharded* S (broadcast bait) instead of the co-partitioned one."""
    rows_l = [(JOIN_ATOMS[i % 4], f"a{i}") for i in range(nrows)]
    cat = Catalog()
    cat.default_shards = nshards
    cat.register("R", Relation.from_rows(JOIN_ATTRS, rows_l), order=JOIN_ATTRS)
    if small:
        rows_r = [(JOIN_ATOMS[i % 4], f"b{i}") for i in range(small)]
        cat.register(
            "S", Relation.from_rows(RIGHT_ATTRS, rows_r), order=RIGHT_ATTRS
        )
        run("ANALYZE R", cat)
    else:
        rows_r = [(JOIN_ATOMS[i % 4], f"b{i}") for i in range(nrows)]
        cat.register(
            "S", Relation.from_rows(RIGHT_ATTRS, rows_r), order=RIGHT_ATTRS
        )
        run("ANALYZE R", cat)
        run("ANALYZE S", cat)
    return cat


class TestShardJoinEqualsCoordinatorEqualsNaive:
    @given(
        rows_l=left_rows,
        rows_r=right_rows,
        nshards=st.integers(min_value=2, max_value=4),
        flavour=st.sampled_from(["JOIN", "FLATJOIN"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_identity(self, rows_l, rows_r, nshards, flavour):
        """Shard-local join == coordinator join == naive, all over the
        *same* sharded catalog.  (An NF2 join's result depends on the
        nesting of its inputs, and a sharded store's per-shard
        canonical nesting legitimately differs from an unsharded
        store's global nesting — so the plain catalog is not the
        reference here; the sharded coordinator join is.)"""
        _, sharded = _catalogs(rows_l, rows_r, nshards)
        expr = parse(f"{flavour} R, S")
        naive = evaluate_naive(expr, sharded)
        coordinator = _serial(lambda: plan(expr, sharded).execute())
        fanned = _forced_parallel(lambda: plan(expr, sharded).execute())
        assert coordinator.to_1nf() == naive.to_1nf()
        assert fanned.to_1nf() == coordinator.to_1nf()
        assert fanned.to_1nf() == naive.to_1nf()

    def test_co_partitioned_plan_is_chosen_and_correct(self):
        cat = _bulk_catalog()
        for flavour, op_cls in [
            ("JOIN", ParallelShardJoin),
            ("FLATJOIN", ParallelShardFlatJoin),
        ]:
            expr = parse(f"{flavour} R, S")

            def go():
                planned = plan(expr, cat)
                assert isinstance(planned.root, op_cls), planned.root
                assert planned.root.shard_side == "both"
                return planned.execute()

            fanned = _forced_parallel(go)
            naive = evaluate_naive(expr, cat)
            assert fanned.to_1nf() == naive.to_1nf()

    def test_broadcast_small_side_plan_is_chosen_and_correct(self):
        cat = _bulk_catalog(small=5)
        expr = parse("JOIN R, S")

        def go():
            planned = plan(expr, cat)
            assert isinstance(planned.root, ParallelShardJoin), planned.root
            assert planned.root.shard_side in ("left", "right")
            return planned.execute()

        fanned = _forced_parallel(go)
        naive = evaluate_naive(expr, cat)
        assert fanned.to_1nf() == naive.to_1nf()

    def test_serial_fallback_matches(self):
        cat = _bulk_catalog()
        expr = parse("JOIN R, S")
        saved = os.environ.get("REPRO_PARALLEL")
        os.environ["REPRO_PARALLEL"] = "0"
        try:
            serial = plan(expr, cat).execute()
        finally:
            if saved is None:
                del os.environ["REPRO_PARALLEL"]
            else:
                os.environ["REPRO_PARALLEL"] = saved
        assert serial.to_1nf() == evaluate_naive(expr, cat).to_1nf()


class TestWorkerPoolLifecycle:
    def test_pool_is_reused_across_queries(self):
        cat = _bulk_catalog()
        expr = parse("JOIN R, S")

        def go():
            plan(expr, cat).execute()
            pool = cat._pool
            assert pool is not None and pool.forks == 4
            plan(expr, cat).execute()
            plan(parse("R"), cat).execute()
            assert cat._pool is pool
            assert pool.forks == 4  # no refork: the pool stayed warm
            assert pool.respawns == 0
            assert cat.pool_is_warm(4)

        _forced_parallel(go)
        cat.close_parallel_pool()

    def test_dml_regenerates_the_pool(self):
        cat = _bulk_catalog()
        expr = parse("R")

        def go():
            plan(expr, cat).execute()
            first = cat._pool
            assert first is not None
            run("INSERT INTO R VALUES ('j1', 'fresh')", cat)
            assert not cat.pool_is_warm(4)  # generation went stale
            result = plan(expr, cat).execute()
            assert cat._pool is not first
            assert first.closed
            assert any(
                "fresh" in repr(t) for t in result.to_1nf().tuples
            )

        _forced_parallel(go)
        cat.close_parallel_pool()

    def test_dead_worker_is_respawned(self):
        cat = _bulk_catalog()
        expr = parse("R")

        def go():
            before = plan(expr, cat).execute()
            pool = cat._pool
            pool.workers[0].proc.kill()
            pool.workers[0].proc.join()
            after = plan(expr, cat).execute()
            assert pool.respawns >= 1
            assert after.to_1nf() == before.to_1nf()

        _forced_parallel(go)
        cat.close_parallel_pool()

    def test_abandoned_stream_respawns_pending_workers(self):
        cat = _bulk_catalog()

        def go():
            from repro.storage.columnar import AtomDict

            pool = cat.parallel_pool(4)
            jobs = [(i, ("scan", "R", i, None, ())) for i in range(4)]
            stream = pool.run(jobs, AtomDict())
            next(stream)
            stream.close()  # abandon mid-stream
            assert pool.respawns >= 1
            # the pool still serves queries correctly afterwards
            expr = parse("R")
            got = plan(expr, cat).execute()
            assert got.to_1nf() == evaluate_naive(expr, cat).to_1nf()

        _forced_parallel(go)
        cat.close_parallel_pool()

    def test_close_terminates_workers(self):
        cat = _bulk_catalog()

        def go():
            plan(parse("R"), cat).execute()
            pool = cat._pool
            procs = [w.proc for w in pool.workers if w is not None]
            assert procs
            cat.close_parallel_pool()
            assert pool.closed
            for proc in procs:
                proc.join(timeout=5)
                assert not proc.is_alive()
            assert cat._pool is None
            cat.close_parallel_pool()  # idempotent

        _forced_parallel(go)
