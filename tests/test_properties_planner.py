"""Property test: planned execution ≡ naive evaluation.

Randomized query trees over synthetic relations
(:mod:`repro.workloads.synthetic`) must produce exactly the same
:class:`~repro.core.nfr_relation.NFRelation` whether they are executed
through the cost-based planner (the default path of
:func:`repro.query.evaluate`) or by the naive AST interpreter
(:func:`repro.query.evaluate_naive`).  NFRelations are sets, so
"same result modulo tuple order" is plain equality.

The catalog state is also randomized: sometimes the relation stays an
in-memory NFR (MemoryScan plans), sometimes ``ANALYZE`` opens the paged
store first (HeapScan/IndexScan plans), in either storage mode.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import Catalog, evaluate_naive, parse, run
from repro.query import ast
from repro.workloads.synthetic import (
    product_blocks,
    random_relation,
    skewed_relation,
    with_planted_fd,
    with_planted_mvd,
)

ATTRS = ["A", "B", "C"]
DOMAIN = 5


def _base_relation(kind: int, seed: int):
    if kind == 0:
        return random_relation(ATTRS, 20, domain_size=DOMAIN, seed=seed)
    if kind == 1:
        return with_planted_fd(
            ATTRS, ["A"], 18, domain_size=DOMAIN, seed=seed
        )
    if kind == 2:
        return with_planted_mvd(
            ATTRS,
            ["A"],
            ["B"],
            keys=3,
            group_size=2,
            complement_size=2,
            domain_size=DOMAIN,
            seed=seed,
        )
    if kind == 3:
        return product_blocks(ATTRS, blocks=3, block_side=2, seed=seed)
    return skewed_relation(ATTRS, 16, domain_size=DOMAIN, seed=seed)


# -- query-tree strategies -----------------------------------------------------

_attr = st.sampled_from(ATTRS)
_value = st.one_of(
    *[
        st.sampled_from([f"{a.lower()}{i}" for i in range(DOMAIN + 1)])
        for a in ATTRS
    ]
)


def _conditions():
    contains = st.builds(ast.Contains, _attr, _value)
    singleton = st.builds(ast.SingletonEquals, _attr, _value)
    component = st.builds(
        lambda a, vs: ast.ComponentEquals(a, tuple(vs)),
        _attr,
        st.lists(_value, min_size=1, max_size=2),
    )
    atom = st.one_of(contains, singleton, component)
    return st.one_of(atom, st.builds(ast.And, atom, atom))


def _schema_preserving(base: st.SearchStrategy) -> st.SearchStrategy:
    """Expressions whose output schema keeps all three attribute names
    (so UNION/DIFFERENCE stay well-typed on any pair)."""

    def extend(expr):
        return st.one_of(
            st.just(expr),
            st.builds(ast.Select, st.just(expr), _conditions()),
            st.builds(
                lambda e, attrs: ast.Nest(e, tuple(attrs)),
                st.just(expr),
                st.lists(_attr, min_size=1, max_size=2, unique=True),
            ),
            st.builds(ast.Unnest, st.just(expr), _attr),
            st.builds(ast.Flatten, st.just(expr)),
            st.builds(
                lambda e, order: ast.Canonical(e, tuple(order)),
                st.just(expr),
                st.permutations(ATTRS),
            ),
        )

    return st.recursive(base, lambda inner: inner.flatmap(extend), max_leaves=4)


def _expressions() -> st.SearchStrategy:
    unary = _schema_preserving(st.just(ast.Name("R")))
    binary = st.builds(
        lambda op, left, right: op(left, right),
        st.sampled_from(
            [ast.Join, ast.FlatJoin, ast.Union, ast.Difference]
        ),
        unary,
        unary,
    )
    topped = st.one_of(unary, binary, _schema_preserving(binary))
    projected = st.builds(
        lambda e, attrs: ast.Project(e, tuple(attrs)),
        topped,
        st.lists(_attr, min_size=1, max_size=3, unique=True),
    )
    return st.one_of(topped, projected)


class TestPlannedEqualsNaive:
    @given(
        kind=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=0, max_value=50),
        mode=st.sampled_from(["nfr", "1nf"]),
        open_store=st.booleans(),
        expr=_expressions(),
    )
    @settings(max_examples=60, deadline=None)
    def test_equivalence(self, kind, seed, mode, open_store, expr):
        catalog = Catalog()
        catalog.register("R", _base_relation(kind, seed), mode=mode)
        if open_store:
            run("ANALYZE R", catalog)
        planned = run_expr_planned(expr, catalog)
        naive = evaluate_naive(expr, catalog)
        assert planned == naive

    @given(
        seed=st.integers(min_value=0, max_value=50),
        open_store=st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_equivalence_after_dml(self, seed, open_store):
        """Plans stay correct (fresh statistics) across DML."""
        catalog = Catalog()
        catalog.register(
            "R", random_relation(ATTRS, 12, domain_size=4, seed=seed)
        )
        if open_store:
            run("ANALYZE R", catalog)
        run("INSERT INTO R VALUES ('zz', 'zz', 'zz')", catalog)
        query = "SELECT R WHERE A CONTAINS 'zz'"
        assert run(query, catalog) == evaluate_naive(
            parse(query), catalog
        )
        run("DELETE FROM R VALUES ('zz', 'zz', 'zz')", catalog)
        assert run(query, catalog) == evaluate_naive(
            parse(query), catalog
        )


def run_expr_planned(expr, catalog):
    from repro.query import evaluate

    return evaluate(expr, catalog)
