"""Tests for the HeapFile free-space map, batched writes and vacuum.

The regression being guarded: insert placement must probe O(1) pages
regardless of how many pages the file already holds (the seed scanned
every page per insert — quadratic bulk loads).
"""

import pytest

from repro.errors import PageOverflowError, RecordNotFoundError
from repro.storage.heap import HeapFile
from repro.storage.pages import PAGE_SIZE


def _bulk_load(n: int, payload: bytes = b"x" * 100) -> HeapFile:
    h = HeapFile()
    for _ in range(n):
        h.insert(payload)
    return h


class TestFreeSpaceMap:
    def test_page_probes_flat_per_insert(self):
        """Each insert probes exactly one page, independent of file size."""
        small = _bulk_load(100)
        large = _bulk_load(2000)
        assert small.stats.pages_probed == 100
        assert large.stats.pages_probed == 2000
        assert large.page_count > small.page_count  # file really grew
        assert (
            large.stats.pages_probed / 2000
            == small.stats.pages_probed / 100
            == 1.0
        )

    def test_insert_reuses_freed_space(self):
        h = HeapFile()
        big = b"x" * 2000
        rid = h.insert(big)
        h.insert(big)  # page now (nearly) full
        pages_before = h.page_count
        h.delete(rid)
        assert h.insert(big)[0] == rid[0]  # lands in the freed page
        assert h.page_count == pages_before

    def test_insert_fills_partial_pages(self):
        h = _bulk_load(50)
        # 50 records of 108 bytes each fit on two 4K pages
        assert h.page_count == 2

    def test_oversized_record_rejected(self):
        h = HeapFile()
        with pytest.raises(PageOverflowError):
            h.insert(b"x" * (PAGE_SIZE + 1))
        assert h.page_count == 0


class TestInsertMany:
    def test_charges_one_write_per_touched_page(self):
        h = HeapFile()
        rids = h.insert_many([b"r%d" % i for i in range(10)])
        assert len(rids) == 10
        assert len({pid for pid, _ in rids}) == 1  # all fit on one page
        assert h.stats.page_writes == 1
        assert h.stats.pages_probed == 10

    def test_matches_individual_inserts(self):
        batched = HeapFile()
        single = HeapFile()
        records = [b"y" * (50 + i) for i in range(40)]
        batched.insert_many(records)
        for r in records:
            single.insert(r)
        assert sorted(r for _, r in batched.scan()) == sorted(
            r for _, r in single.scan()
        )


class TestVacuum:
    def test_compacts_and_remaps(self):
        h = HeapFile()
        big = b"z" * 1500
        rids = [h.insert(big) for _ in range(9)]  # 2 per page -> 5 pages
        keep = rids[::2]
        for rid in rids[1::2]:
            h.delete(rid)
        pages_before = h.page_count
        mapping = h.vacuum()
        assert set(mapping) == set(keep)
        assert h.page_count < pages_before
        assert h.record_count == len(keep)
        for old in keep:
            assert h.read(mapping[old]) == big

    def test_old_rids_invalid_after_vacuum(self):
        h = HeapFile()
        h.insert(b"a" * 3000)
        rid = h.insert(b"b" * 3000)
        h.delete(h.insert(b"c" * 3000))
        mapping = h.vacuum()
        new = mapping[rid]
        assert h.read(new) == b"b" * 3000
        with pytest.raises(RecordNotFoundError):
            h.read((5, 0))

    def test_vacuum_reclaims_fsm_fragmentation(self):
        """The class-rounded free-space map leaves pages under-filled
        for awkward record sizes; vacuum packs with an exact fits check."""
        h = HeapFile()
        record = b"f" * 1300  # FSM places 2/page; dense packing fits 3
        for _ in range(30):
            h.insert(record)
        assert h.page_count == 15
        mapping = h.vacuum()
        assert h.page_count == 10
        assert len(mapping) == 30
        assert h.record_count == 30

    def test_delete_many_charges_one_write_per_touched_page(self):
        h = HeapFile()
        rids = [h.insert(b"d%02d" % i) for i in range(10)]  # one page
        h.stats.reset()
        h.delete_many(rids[:6])
        assert h.stats.page_writes == 1
        assert h.record_count == 4

    def test_vacuum_io_charges_are_batched(self):
        h = HeapFile()
        for _ in range(20):
            h.insert(b"w" * 1000)
        h.stats.reset()
        h.vacuum()
        # one read per old page, one write per new page — not per record
        assert h.stats.page_writes == h.page_count
        assert h.stats.page_reads >= h.page_count
        assert h.stats.page_writes < 20


class TestLiveCounters:
    """record_count / used_bytes are maintained counters (O(1)), not
    O(pages) sweeps — they must stay exact through every mutation."""

    def _sweep(self, h: HeapFile) -> tuple[int, int]:
        pages = h._pages
        count = sum(p.live_count for p in pages)
        nbytes = sum(len(r) for p in pages for _, r in p.iter_records())
        return count, nbytes

    def test_counters_track_insert_and_delete(self):
        h = HeapFile()
        rids = [h.insert(b"x" * (10 + i)) for i in range(20)]
        assert (h.record_count, h.used_bytes()) == self._sweep(h)
        for rid in rids[::2]:
            h.delete(rid)
        assert (h.record_count, h.used_bytes()) == self._sweep(h)

    def test_counters_track_batch_ops_and_vacuum(self):
        h = HeapFile()
        rids = h.insert_many(b"y" * 500 for _ in range(30))
        h.delete_many(rids[:10])
        assert (h.record_count, h.used_bytes()) == self._sweep(h)
        h.vacuum()
        assert (h.record_count, h.used_bytes()) == self._sweep(h)
        assert h.record_count == 20
        assert h.used_bytes() == 20 * 500

    def test_counters_after_mixed_churn(self):
        import random

        rng = random.Random(7)
        h = HeapFile()
        live = []
        for step in range(300):
            if live and rng.random() < 0.4:
                h.delete(live.pop(rng.randrange(len(live))))
            else:
                live.append(h.insert(bytes(rng.randrange(1, 200))))
            if step % 97 == 0:
                mapping = h.vacuum()
                live = [mapping.get(r, r) for r in live]
        assert (h.record_count, h.used_bytes()) == self._sweep(h)
        assert h.record_count == len(live)
