"""Tests for repro.core.nfr_relation (NFRelation, Theorem 1)."""

import pytest

from repro.core.nfr_relation import NFRelation
from repro.core.nfr_tuple import NFRTuple
from repro.errors import NFRError, SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema
from repro.relational.tuples import FlatTuple


class TestConstruction:
    def test_from_1nf_roundtrip(self, small_ab):
        nfr = NFRelation.from_1nf(small_ab)
        assert nfr.cardinality == 4
        assert nfr.to_1nf() == small_ab

    def test_from_components(self):
        nfr = NFRelation.from_components(
            ["A", "B"], [(["a1", "a2"], ["b1"])]
        )
        assert nfr.cardinality == 1
        assert nfr.flat_count == 2

    def test_from_records(self):
        nfr = NFRelation.from_records(
            ["A", "B"], [{"A": ["a"], "B": ["b1", "b2"]}]
        )
        assert nfr.flat_count == 2

    def test_schema_mismatch_rejected(self):
        t = NFRTuple(RelationSchema(["X"]), [["x"]])
        with pytest.raises(SchemaError):
            NFRelation(RelationSchema(["A"]), [t])


class TestRStar:
    """Theorem 1: R* is unique and well-defined."""

    def test_r_star_union_of_expansions(self):
        nfr = NFRelation.from_components(
            ["A", "B"],
            [(["a1", "a2"], ["b1"]), (["a3"], ["b2"])],
        )
        assert nfr.flat_count == 3

    def test_expansions_disjoint_for_derived_forms(self, small_ab):
        from repro.core.canonical import canonical_form

        form = canonical_form(small_ab, ["A", "B"])
        assert form.expansions_disjoint()

    def test_overlapping_expansions_detected(self):
        # Hand-built (not derivable by composition) overlapping NFR.
        nfr = NFRelation.from_components(
            ["A", "B"],
            [(["a1", "a2"], ["b1"]), (["a1"], ["b1", "b2"])],
        )
        assert not nfr.expansions_disjoint()
        assert nfr.total_expansion_count() == 4
        assert nfr.flat_count == 3

    def test_represents(self):
        nfr = NFRelation.from_components(["A", "B"], [(["a1", "a2"], ["b1"])])
        schema = nfr.schema
        assert nfr.represents(FlatTuple(schema, ["a1", "b1"]))
        assert not nfr.represents(FlatTuple(schema, ["a1", "b2"]))

    def test_tuples_containing(self):
        nfr = NFRelation.from_components(
            ["A", "B"],
            [(["a1", "a2"], ["b1"]), (["a1"], ["b1", "b2"])],
        )
        flat = FlatTuple(nfr.schema, ["a1", "b1"])
        assert len(nfr.tuples_containing(flat)) == 2

    def test_information_equivalence(self, small_ab):
        from repro.workloads.paper_examples import EXAMPLE1_R1, EXAMPLE1_R2

        assert EXAMPLE1_R1.information_equivalent(EXAMPLE1_R2)


class TestDerivation:
    def test_with_without_tuple(self):
        nfr = NFRelation.from_components(["A"], [(["a1"],)])
        t = NFRTuple(nfr.schema, [["a2"]])
        assert nfr.with_tuple(t).cardinality == 2
        assert nfr.with_tuple(t).without_tuple(t) == nfr

    def test_without_absent_tuple_raises(self):
        nfr = NFRelation.from_components(["A"], [(["a1"],)])
        with pytest.raises(NFRError):
            nfr.without_tuple(NFRTuple(nfr.schema, [["zz"]]))

    def test_replace_tuples(self):
        nfr = NFRelation.from_components(["A"], [(["a1"],), (["a2"],)])
        old = [t for t in nfr if "a1" in t["A"]][0]
        new = NFRTuple(nfr.schema, [["a1", "a3"]])
        out = nfr.replace_tuples([old], [new])
        assert out.cardinality == 2
        assert new in out

    def test_reorder(self):
        nfr = NFRelation.from_components(["A", "B"], [(["a"], ["b"])])
        out = nfr.reorder(["B", "A"])
        assert out.schema.names == ("B", "A")
        assert out.flat_count == 1


class TestRendering:
    def test_to_table(self):
        nfr = NFRelation.from_components(
            ["A", "B"], [(["a1", "a2"], ["b1"])]
        )
        table = nfr.to_table()
        assert "a1, a2" in table

    def test_sorted_tuples_stable(self):
        nfr = NFRelation.from_components(
            ["A"], [(["a2"],), (["a1"],), (["a3"],)]
        )
        rendered = [t.render() for t in nfr.sorted_tuples()]
        assert rendered == ["[A(a1)]", "[A(a2)]", "[A(a3)]"]
