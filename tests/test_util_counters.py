"""Tests for repro.util.counters."""

from repro.util.counters import OperationCounter


class TestOperationCounter:
    def test_starts_at_zero(self):
        c = OperationCounter()
        assert c.compositions == 0
        assert c.decompositions == 0
        assert c.tuple_probes == 0

    def test_total_structural(self):
        c = OperationCounter()
        c.compositions = 3
        c.decompositions = 2
        assert c.total_structural == 5

    def test_mark_and_since(self):
        c = OperationCounter()
        c.compositions = 5
        c.mark("x")
        c.compositions = 9
        c.decompositions = 1
        delta = c.since("x")
        assert delta.compositions == 4
        assert delta.decompositions == 1

    def test_since_unknown_mark_is_absolute(self):
        c = OperationCounter()
        c.compositions = 7
        assert c.since("nope").compositions == 7

    def test_reset_clears_everything(self):
        c = OperationCounter()
        c.compositions = 5
        c.mark("x")
        c.reset()
        assert c.compositions == 0
        assert c.since("x").compositions == 0

    def test_snapshot_is_immutable_copy(self):
        c = OperationCounter()
        c.compositions = 2
        snap = c.snapshot()
        c.compositions = 10
        assert snap.compositions == 2
        assert snap.total_structural == 2
