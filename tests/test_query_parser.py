"""Tests for repro.query.parser."""

import pytest

from repro.errors import ParseError
from repro.query import ast
from repro.query.parser import parse


class TestExpressions:
    def test_name(self):
        assert parse("R") == ast.Name("R")

    def test_parenthesised(self):
        assert parse("(R)") == ast.Name("R")

    def test_select_contains(self):
        node = parse("SELECT R WHERE A CONTAINS 'a1'")
        assert node == ast.Select(ast.Name("R"), ast.Contains("A", "a1"))

    def test_select_component_equals(self):
        node = parse("SELECT R WHERE A = {'a1', 'a2'}")
        assert node == ast.Select(
            ast.Name("R"), ast.ComponentEquals("A", ("a1", "a2"))
        )

    def test_select_singleton_equals(self):
        node = parse("SELECT R WHERE A = 'a1'")
        assert node == ast.Select(
            ast.Name("R"), ast.SingletonEquals("A", "a1")
        )

    def test_select_and_chain(self):
        node = parse("SELECT R WHERE A CONTAINS 'x' AND B CONTAINS 2")
        assert isinstance(node.condition, ast.And)
        assert node.condition.right == ast.Contains("B", 2)

    def test_project(self):
        node = parse("PROJECT R ON (A, B)")
        assert node == ast.Project(ast.Name("R"), ("A", "B"))

    def test_nest(self):
        node = parse("NEST R BY (A)")
        assert node == ast.Nest(ast.Name("R"), ("A",))

    def test_unnest(self):
        assert parse("UNNEST R ON A") == ast.Unnest(ast.Name("R"), "A")

    def test_canonical(self):
        node = parse("CANONICAL R ORDER (B, A)")
        assert node == ast.Canonical(ast.Name("R"), ("B", "A"))

    def test_flatten(self):
        assert parse("FLATTEN R") == ast.Flatten(ast.Name("R"))

    def test_binary_operators(self):
        assert parse("JOIN R, S") == ast.Join(ast.Name("R"), ast.Name("S"))
        assert parse("FLATJOIN R, S") == ast.FlatJoin(
            ast.Name("R"), ast.Name("S")
        )
        assert parse("UNION R, S") == ast.Union(ast.Name("R"), ast.Name("S"))
        assert parse("DIFFERENCE R, S") == ast.Difference(
            ast.Name("R"), ast.Name("S")
        )

    def test_nested_composition(self):
        node = parse("NEST (SELECT R WHERE A CONTAINS 'x') BY (B)")
        assert isinstance(node, ast.Nest)
        assert isinstance(node.source, ast.Select)

    def test_join_of_parenthesised_expressions(self):
        node = parse("JOIN (NEST R BY (A)), (NEST S BY (B))")
        assert isinstance(node.left, ast.Nest)
        assert isinstance(node.right, ast.Nest)


class TestStatements:
    def test_let(self):
        node = parse("LET X = NEST R BY (A)")
        assert isinstance(node, ast.Let)
        assert node.name == "X"

    def test_insert(self):
        node = parse("INSERT INTO R VALUES ('s1', 'c1', 42)")
        assert node == ast.InsertValues("R", ("s1", "c1", 42))

    def test_delete(self):
        node = parse("DELETE FROM R VALUES ('s1', 'c1', 42)")
        assert node == ast.DeleteValues("R", ("s1", "c1", 42))


class TestErrors:
    def test_trailing_input(self):
        with pytest.raises(ParseError, match="trailing"):
            parse("R R")

    def test_missing_where(self):
        with pytest.raises(ParseError):
            parse("SELECT R")

    def test_missing_name_list_paren(self):
        with pytest.raises(ParseError):
            parse("PROJECT R ON A")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse("")

    def test_bad_condition(self):
        with pytest.raises(ParseError):
            parse("SELECT R WHERE A LIKE 'x'")

    def test_number_as_relation_rejected(self):
        with pytest.raises(ParseError):
            parse("42")
