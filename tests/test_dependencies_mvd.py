"""Tests for repro.dependencies.mvd."""

import pytest

from repro.dependencies.mvd import MultivaluedDependency as MVD
from repro.dependencies.mvd import mvd_partition_notation
from repro.errors import DependencyError
from repro.relational.relation import Relation


class TestConstruction:
    def test_parse(self):
        m = MVD.parse("A ->-> B, C")
        assert m.lhs == {"A"}
        assert m.rhs == {"B", "C"}

    def test_parse_short_arrow(self):
        assert MVD.parse("A ->> B") == MVD(["A"], ["B"])

    def test_parse_without_arrow_rejected(self):
        with pytest.raises(DependencyError):
            MVD.parse("A -> B")

    def test_partition_notation(self):
        mvds = mvd_partition_notation(["A"], [["B"], ["C"]])
        assert MVD(["A"], ["B"]) in mvds
        assert MVD(["A"], ["C"]) in mvds


class TestComplement:
    def test_complement(self):
        m = MVD(["A"], ["B"])
        assert m.complement_in(["A", "B", "C", "D"]) == {"C", "D"}

    def test_complemented_mvd(self):
        m = MVD(["A"], ["B"]).complemented(["A", "B", "C"])
        assert m == MVD(["A"], ["C"])

    def test_attribute_outside_universe_rejected(self):
        with pytest.raises(DependencyError):
            MVD(["A"], ["B"]).complement_in(["A"])

    def test_trivial_detection(self):
        assert MVD(["A"], ["A"]).is_trivial_in(["A", "B"])
        assert MVD(["A"], ["B"]).is_trivial_in(["A", "B"])  # covers U
        assert not MVD(["A"], ["B"]).is_trivial_in(["A", "B", "C"])


class TestHoldsIn:
    def test_product_structure_holds(self):
        # For a1: courses {c1,c2} x clubs {b1,b2}; the Fig. 1 pattern.
        rows = [
            ("a1", c, b)
            for c in ("c1", "c2")
            for b in ("b1", "b2")
        ] + [("a2", "c1", "b1")]
        r = Relation.from_rows(["A", "C", "B"], rows)
        assert MVD(["A"], ["C"]).holds_in(r)

    def test_missing_swap_tuple_violates(self):
        r = Relation.from_rows(
            ["A", "B", "C"],
            [("a", "b1", "c1"), ("a", "b2", "c2")],
        )
        assert not MVD(["A"], ["B"]).holds_in(r)

    def test_example3_relation_satisfies_paper_mvd(self):
        from repro.workloads.paper_examples import EXAMPLE3_MVD, EXAMPLE3_R5

        assert EXAMPLE3_MVD.holds_in(EXAMPLE3_R5)

    def test_trivial_mvd_always_holds(self):
        r = Relation.from_rows(["A", "B"], [("a", "b")])
        assert MVD(["A"], ["B"]).holds_in(r)

    def test_fd_implies_mvd_on_instance(self):
        # Whenever A -> B holds, A ->-> B holds.
        r = Relation.from_rows(
            ["A", "B", "C"],
            [("a", "b", "c1"), ("a", "b", "c2"), ("a2", "b2", "c1")],
        )
        assert MVD(["A"], ["B"]).holds_in(r)

    def test_rename(self):
        assert MVD(["A"], ["B"]).rename({"B": "Y"}) == MVD(["A"], ["Y"])
