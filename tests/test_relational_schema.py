"""Tests for repro.relational.schema."""

import pytest

from repro.errors import SchemaError, UnknownAttributeError
from repro.relational.attribute import Attribute, Domain
from repro.relational.schema import RelationSchema


class TestConstruction:
    def test_from_strings(self):
        s = RelationSchema(["A", "B"])
        assert s.names == ("A", "B")
        assert s.degree == 2

    def test_from_attributes(self):
        s = RelationSchema([Attribute("A", Domain("D", base_type=int))])
        assert s.domain_of("A").base_type is int

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            RelationSchema(["A", "A"])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema([])

    def test_bad_member_type_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema([42])


class TestLookup:
    def test_contains_and_attribute(self):
        s = RelationSchema(["A", "B"])
        assert "A" in s
        assert s.attribute("B").name == "B"

    def test_unknown_attribute_error_lists_known(self):
        s = RelationSchema(["A", "B"])
        with pytest.raises(UnknownAttributeError, match="A, B"):
            s.attribute("Z")

    def test_index_of(self):
        s = RelationSchema(["A", "B", "C"])
        assert s.index_of("B") == 1


class TestDerivation:
    def test_project_keeps_given_order(self):
        s = RelationSchema(["A", "B", "C"])
        assert s.project(["C", "A"]).names == ("C", "A")

    def test_project_duplicate_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema(["A", "B"]).project(["A", "A"])

    def test_drop(self):
        s = RelationSchema(["A", "B", "C"]).drop(["B"])
        assert s.names == ("A", "C")

    def test_drop_all_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema(["A"]).drop(["A"])

    def test_rename(self):
        s = RelationSchema(["A", "B"]).rename({"A": "X"})
        assert s.names == ("X", "B")

    def test_rename_unknown_rejected(self):
        with pytest.raises(UnknownAttributeError):
            RelationSchema(["A"]).rename({"Z": "X"})

    def test_reorder(self):
        s = RelationSchema(["A", "B", "C"]).reorder(["C", "B", "A"])
        assert s.names == ("C", "B", "A")

    def test_reorder_requires_permutation(self):
        with pytest.raises(SchemaError):
            RelationSchema(["A", "B"]).reorder(["A"])

    def test_concat_disjoint(self):
        s = RelationSchema(["A"]).concat(RelationSchema(["B"]))
        assert s.names == ("A", "B")

    def test_concat_overlap_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema(["A"]).concat(RelationSchema(["A"]))

    def test_common_names_in_left_order(self):
        left = RelationSchema(["A", "B", "C"])
        right = RelationSchema(["C", "B", "Z"])
        assert left.common_names(right) == ("B", "C")


class TestEquality:
    def test_order_sensitive_equality(self):
        assert RelationSchema(["A", "B"]) == RelationSchema(["A", "B"])
        assert RelationSchema(["A", "B"]) != RelationSchema(["B", "A"])

    def test_same_attributes_ignores_order(self):
        assert RelationSchema(["A", "B"]).same_attributes(
            RelationSchema(["B", "A"])
        )

    def test_hashable(self):
        assert len({RelationSchema(["A"]), RelationSchema(["A"])}) == 1


class TestValidation:
    def test_validate_values_arity(self):
        with pytest.raises(SchemaError):
            RelationSchema(["A", "B"]).validate_values(["x"])

    def test_validate_values_domains(self):
        s = RelationSchema([Attribute("N", Domain("D", base_type=int))])
        assert s.validate_values([3]) == (3,)
        with pytest.raises(Exception):
            s.validate_values(["three"])
