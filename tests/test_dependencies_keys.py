"""Tests for repro.dependencies.keys."""

from repro.dependencies.fd import FunctionalDependency as FD
from repro.dependencies.keys import (
    candidate_keys,
    is_candidate_key,
    is_superkey,
    prime_attributes,
)


class TestSuperkey:
    def test_whole_universe_is_superkey(self):
        assert is_superkey({"A", "B"}, {"A", "B"}, [])

    def test_fd_gives_smaller_superkey(self):
        fds = [FD.parse("A -> B")]
        assert is_superkey({"A"}, {"A", "B"}, fds)
        assert not is_superkey({"B"}, {"A", "B"}, fds)


class TestCandidateKeys:
    def test_simple_chain(self):
        fds = [FD.parse("A -> B"), FD.parse("B -> C")]
        assert candidate_keys({"A", "B", "C"}, fds) == {frozenset({"A"})}

    def test_cycle_gives_multiple_keys(self):
        fds = [FD.parse("A -> B"), FD.parse("B -> A")]
        keys = candidate_keys({"A", "B"}, fds)
        assert keys == {frozenset({"A"}), frozenset({"B"})}

    def test_no_fds_key_is_universe(self):
        assert candidate_keys({"A", "B"}, []) == {frozenset({"A", "B"})}

    def test_core_attribute_in_every_key(self):
        # C never appears on a rhs, so every key contains C.
        fds = [FD.parse("A -> B")]
        keys = candidate_keys({"A", "B", "C"}, fds)
        assert all("C" in k for k in keys)

    def test_classic_two_key_example(self):
        # city,street -> zip; zip -> city
        fds = [FD.parse("City, Street -> Zip"), FD.parse("Zip -> City")]
        keys = candidate_keys({"City", "Street", "Zip"}, fds)
        assert frozenset({"City", "Street"}) in keys
        assert frozenset({"Street", "Zip"}) in keys
        assert len(keys) == 2

    def test_is_candidate_key_rejects_superset(self):
        fds = [FD.parse("A -> B")]
        assert is_candidate_key({"A"}, {"A", "B"}, fds)
        assert not is_candidate_key({"A", "B"}, {"A", "B"}, fds)


class TestPrimeAttributes:
    def test_prime(self):
        fds = [FD.parse("City, Street -> Zip"), FD.parse("Zip -> City")]
        assert prime_attributes({"City", "Street", "Zip"}, fds) == {
            "City",
            "Street",
            "Zip",
        }

    def test_non_prime(self):
        fds = [FD.parse("A -> B")]
        assert prime_attributes({"A", "B"}, fds) == {"A"}
