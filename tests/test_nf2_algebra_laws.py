"""Tests for repro.nf2_algebra.laws — the algebra's identities and
documented non-identities."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nest import is_nested_on, nest
from repro.core.nfr_relation import NFRelation
from repro.nf2_algebra import laws
from repro.nf2_algebra.operators import contains
from repro.relational.relation import Relation

ATTRS = ["A", "B", "C"]


def relations(max_rows=8, domain=3):
    value = st.integers(min_value=0, max_value=domain - 1)
    row = st.tuples(*[value for _ in ATTRS])
    return st.lists(row, min_size=1, max_size=max_rows).map(
        lambda rows: NFRelation.from_1nf(Relation.from_rows(ATTRS, rows))
    )


class TestUnnestNest:
    @given(relations(), st.sampled_from(ATTRS))
    @settings(max_examples=50, deadline=None)
    def test_unnest_inverts_nest_on_flat_inputs(self, rel, attr):
        assert laws.unnest_inverts_nest(rel, attr)

    @given(relations(), st.sampled_from(ATTRS), st.sampled_from(ATTRS))
    @settings(max_examples=50, deadline=None)
    def test_unnest_inverts_nest_even_after_other_nest(self, rel, a, b):
        # components of b are still singletons after nesting a != b
        if a == b:
            return
        nested = nest(rel, a)
        assert laws.unnest_inverts_nest(nested, b)


class TestNestUnnest:
    @given(relations(), st.sampled_from(ATTRS))
    @settings(max_examples=50, deadline=None)
    def test_iff_characterisation(self, rel, attr):
        nested = nest(rel, attr)
        assert laws.nest_inverts_unnest_iff_nested(rel, attr)
        assert laws.nest_inverts_unnest_iff_nested(nested, attr)

    def test_nest_does_not_invert_unnest_in_general(self):
        # two tuples that unnest-then-nest merges
        rel = NFRelation.from_components(
            ["A", "B"],
            [(["a1"], ["b1"]), (["a1"], ["b2"])],
        )
        assert not is_nested_on(rel, "B")
        assert not laws.nest_inverts_unnest(rel, "B")


class TestCommutation:
    def test_nests_do_not_commute_in_general(self):
        rel, a, b = laws.nest_commutation_counterexample()
        assert not laws.nests_commute(rel, a, b)

    @given(relations(), st.sampled_from(ATTRS), st.sampled_from(ATTRS))
    @settings(max_examples=50, deadline=None)
    def test_unnests_always_commute(self, rel, a, b):
        nested = nest(nest(rel, a), b)
        assert laws.unnests_commute(nested, a, b)

    @given(relations())
    @settings(max_examples=50, deadline=None)
    def test_select_pushdown_through_nest(self, rel):
        # atom-stable predicate touching B, nest on A: must commute.
        p = contains("B", 0)
        assert laws.select_commutes_with_nest(rel, "A", p)

    def test_select_nest_side_condition_is_necessary(self):
        assert laws.select_nest_noncommutation_example()
