"""Property tests for hash-partitioned shards.

The invariant the whole scale-out layer rests on: for any relation,
any shard count, any conjunctive query and any mutation sequence, a
sharded store is indistinguishable from the single store it partitions
— and both match the naive AST interpreter
(:func:`repro.query.evaluate_naive`), the semantic reference.  Exact
tuple-level equality is asserted in 1nf mode; nfr-mode results are
compared exactly and at the R* (``to_1nf``) level, the representation
the paper's §1 equivalence is defined on.  Durable sharded databases
must additionally recover to exactly the committed prefix after a
crash, regardless of how a transaction straddled the shards.
"""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.db as db
from repro.planner import plan
from repro.query import Catalog, evaluate_naive, parse
from repro.relational.relation import Relation
from repro.relational.tuples import FlatTuple
from repro.storage.engine import NFRStore
from repro.storage.shards import ShardedStore

ATTRS = ["A", "B", "C"]
ATOMS = ["a1", "a2", "b1", "b2", 1, 2]

rows_strategy = st.lists(
    st.tuples(*[st.sampled_from(ATOMS) for _ in ATTRS]),
    min_size=1,
    max_size=10,
).map(lambda rows: sorted(set(rows), key=repr))

shard_counts = st.integers(min_value=1, max_value=4)


def _lit(value):
    return f"'{value}'" if isinstance(value, str) else str(value)


def _query(form, attr, value, second):
    if form == "full":
        return "R"
    if form == "flatten":
        return "FLATTEN R"
    if form == "contains":
        return f"SELECT R WHERE {attr} CONTAINS {_lit(value)}"
    if form == "eq":
        return f"SELECT R WHERE {attr} = {_lit(value)}"
    return (
        f"SELECT R WHERE {attr} CONTAINS {_lit(value)} "
        f"AND B CONTAINS {_lit(second)}"
    )


query_forms = st.sampled_from(["full", "flatten", "contains", "eq", "and"])


class TestShardedQueriesEqualNaive:
    @given(
        rows=rows_strategy,
        nshards=shard_counts,
        mode=st.sampled_from(["1nf", "nfr"]),
        form=query_forms,
        attr=st.sampled_from(ATTRS),
        value=st.sampled_from(ATOMS),
        second=st.sampled_from(ATOMS),
        analyze=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_sharded_equals_single_equals_naive(
        self, rows, nshards, mode, form, attr, value, second, analyze
    ):
        relation = Relation.from_rows(ATTRS, rows)
        plain = Catalog()
        plain.register("R", relation, mode=mode)
        sharded = Catalog()
        sharded.default_shards = nshards
        sharded.register("R", relation, mode=mode)
        expr = parse(_query(form, attr, value, second))
        if analyze:
            from repro.query import run

            run("ANALYZE R", plain)
            run("ANALYZE R", sharded)
        naive = evaluate_naive(expr, plain)
        single = plan(expr, plain).execute()
        fanned = plan(expr, sharded).execute()
        assert single == naive
        assert fanned.to_1nf() == naive.to_1nf()
        if mode == "1nf":
            assert fanned == naive

    @given(
        rows=rows_strategy,
        nshards=st.integers(min_value=2, max_value=4),
        form=query_forms,
        attr=st.sampled_from(ATTRS),
        value=st.sampled_from(ATOMS),
        second=st.sampled_from(ATOMS),
    )
    @settings(max_examples=10, deadline=None)
    def test_worker_pool_path_equals_naive(
        self, rows, nshards, form, attr, value, second
    ):
        """The forked-worker scan (REPRO_PARALLEL=1) returns exactly
        the serial rows — remap, residual kernels, merge and all."""
        relation = Relation.from_rows(ATTRS, rows)
        plain = Catalog()
        plain.register("R", relation, mode="1nf")
        sharded = Catalog()
        sharded.default_shards = nshards
        sharded.register("R", relation, mode="1nf")
        expr = parse(_query(form, attr, value, second))
        naive = evaluate_naive(expr, plain)
        saved = os.environ.get("REPRO_PARALLEL")
        os.environ["REPRO_PARALLEL"] = "1"
        try:
            assert plan(expr, sharded).execute() == naive
        finally:
            if saved is None:
                del os.environ["REPRO_PARALLEL"]
            else:
                os.environ["REPRO_PARALLEL"] = saved


class TestShardedMutationsTrackSingleStore:
    @given(
        rows=rows_strategy,
        nshards=shard_counts,
        ops=st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete"]),
                st.tuples(*[st.sampled_from(ATOMS) for _ in ATTRS]),
            ),
            min_size=1,
            max_size=8,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_mutation_preserves_equivalence(self, rows, nshards, ops):
        relation = Relation.from_rows(ATTRS, rows)
        single = NFRStore.from_relation(relation)
        sharded = ShardedStore.from_relation(relation, nshards=nshards)
        for kind, row in ops:
            flat = FlatTuple(relation.schema, list(row))
            if kind == "insert":
                applied_single = single.insert_flat(flat)[0]
                applied_sharded = sharded.insert_flat(flat)[0]
                assert applied_single == applied_sharded
            else:
                present = single.contains(flat)[0]
                assert present == sharded.contains(flat)[0]
                if not present:
                    continue
                single.delete_flat(flat)
                sharded.delete_flat(flat)
            assert sorted(map(repr, sharded.full_scan()[0])) == sorted(
                map(repr, single.full_scan()[0])
            )
            assert sharded.to_1nf() == single.to_1nf()


class TestDurableShardedRecovery:
    @given(
        rows=rows_strategy,
        nshards=shard_counts,
        committed=st.lists(
            st.tuples(*[st.sampled_from(ATOMS) for _ in ATTRS]),
            max_size=4,
        ),
        torn=st.lists(
            st.tuples(*[st.sampled_from(ATOMS) for _ in ATTRS]),
            max_size=4,
        ),
    )
    @settings(max_examples=15, deadline=None)
    def test_crash_recovers_exactly_the_committed_prefix(
        self, rows, nshards, committed, torn
    ):
        def insert(conn, row):
            conn.execute(
                "INSERT INTO R VALUES ("
                + ", ".join(_lit(v) for v in row)
                + ")"
            )

        relation = Relation.from_rows(ATTRS, rows)
        with tempfile.TemporaryDirectory() as tmp:
            conn = db.connect(
                os.path.join(tmp, "s.db"), shards=nshards
            )
            conn.database.register("R", relation)
            for row in committed:
                insert(conn, row)  # autocommit: each is durable
            expected = sorted(map(repr, conn.execute("R").fetchall()))
            conn.execute("BEGIN")
            for row in torn:
                insert(conn, row)
            conn.database.engine.abandon()  # crash before COMMIT

            conn = db.connect(os.path.join(tmp, "s.db"))
            store = conn.catalog.store_for("R")
            assert getattr(store, "nshards", 1) == nshards or nshards == 1
            recovered = sorted(map(repr, conn.execute("R").fetchall()))
            flattened = sorted(
                map(repr, conn.execute("FLATTEN R").fetchall())
            )
            conn.database.close()

            # the unsharded database given the same committed history
            # holds the same R* — exact nesting may differ (sharded
            # stores are per-shard canonical, not globally canonical)
            flat = db.connect(os.path.join(tmp, "f.db"))
            flat.database.register("R", relation)
            for row in committed:
                insert(flat, row)
            reference = sorted(
                map(repr, flat.execute("FLATTEN R").fetchall())
            )
            flat.database.close()
        assert recovered == expected
        assert flattened == reference
