"""Property tests for the embedded facade.

Two invariants are pinned:

1. **Prepared == literal**: executing a parameterized statement through
   a prepared (cached-plan, late-bound) statement returns exactly the
   rows of the equivalent literal statement evaluated directly — for
   arbitrary relations, predicates and bindings.
2. **Rollback == never executed**: after BEGIN, an arbitrary sequence
   of DML (INSERT / DELETE / executemany / LET rebinds), some of which
   may fail, followed by ROLLBACK leaves the catalog, the paged
   stores (their logical content *and* their encoded record bytes) and
   the statistics exactly as a catalog that never ran the transaction.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.db as db
from repro.relational.relation import Relation

ATTRS = ["A", "B", "C"]
ATOMS = ["a1", "a2", "a3", "b1", "b2"]

rows_strategy = st.lists(
    st.tuples(*[st.sampled_from(ATOMS) for _ in ATTRS]),
    min_size=1,
    max_size=12,
)


def make_conn(rows, mode="nfr"):
    conn = db.connect()
    conn.database.register(
        "R", Relation.from_rows(ATTRS, set(rows)), mode=mode
    )
    return conn


# ---------------------------------------------------------------------------
# prepared-with-parameters == direct-literal evaluation
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    rows=rows_strategy,
    value=st.sampled_from(ATOMS),
    attr=st.sampled_from(ATTRS),
    second=st.sampled_from(ATOMS),
    form=st.sampled_from(["contains", "eq", "and"]),
    analyze=st.booleans(),
)
def test_prepared_equals_literal(rows, value, attr, second, form, analyze):
    conn = make_conn(rows)
    if analyze:
        conn.execute("ANALYZE R")
    if form == "contains":
        text = f"SELECT R WHERE {attr} CONTAINS ?"
        literal = f"SELECT R WHERE {attr} CONTAINS '{value}'"
        params = [value]
    elif form == "eq":
        text = f"SELECT R WHERE {attr} = ?"
        literal = f"SELECT R WHERE {attr} = '{value}'"
        params = [value]
    else:
        text = f"SELECT R WHERE {attr} CONTAINS ? AND B CONTAINS ?"
        literal = (
            f"SELECT R WHERE {attr} CONTAINS '{value}' "
            f"AND B CONTAINS '{second}'"
        )
        params = [value, second]
    stmt = conn.prepare(text)
    got = sorted(map(repr, stmt.execute(params).fetchall()))
    want = sorted(map(repr, conn.execute(literal).fetchall()))
    assert got == want
    # Re-execution with a different binding still matches its literal.
    got2 = sorted(map(repr, stmt.execute([second] * len(params)).fetchall()))
    literal2 = literal.replace(f"'{value}'", f"'{second}'").replace(
        f"'{second}'", f"'{second}'"
    )
    want2 = sorted(map(repr, conn.execute(literal2).fetchall()))
    assert got2 == want2


# ---------------------------------------------------------------------------
# rollback == never-executed
# ---------------------------------------------------------------------------


dml_step = st.one_of(
    st.tuples(
        st.just("insert"),
        st.tuples(*[st.sampled_from(ATOMS) for _ in ATTRS]),
    ),
    st.tuples(
        st.just("delete"),
        st.tuples(*[st.sampled_from(ATOMS) for _ in ATTRS]),
    ),
    st.tuples(
        st.just("insertmany"),
        st.lists(
            st.tuples(*[st.sampled_from(ATOMS) for _ in ATTRS]),
            min_size=1,
            max_size=4,
        ),
    ),
    st.tuples(st.just("let"), st.sampled_from(ATOMS)),
)


def snapshot(conn):
    """Deep state fingerprint: catalog bindings, store contents down to
    the encoded record bytes, and (recollected) statistics."""
    catalog = conn.catalog
    state = {}
    for name in catalog.names():
        store = catalog.store_if_open(name)
        store_state = None
        if store is not None:
            store_state = (
                store.relation,
                store.to_1nf(),
                sorted(record for _, record in store.heap.scan()),
            )
        state[name] = (
            catalog.get(name),
            catalog.order_of(name),
            catalog.mode_of(name),
            store_state,
            catalog.stats_for(name),
        )
    return state


def apply_steps(conn, steps):
    """One BEGIN + the DML sequence (failures swallowed) + ROLLBACK."""
    conn.execute("BEGIN")
    for kind, payload in steps:
        try:
            if kind == "insert":
                conn.execute(
                    "INSERT INTO R VALUES (?, ?, ?)", list(payload)
                )
            elif kind == "delete":
                conn.execute(
                    "DELETE FROM R VALUES (?, ?, ?)", list(payload)
                )
            elif kind == "insertmany":
                conn.executemany(
                    "INSERT INTO R VALUES (?, ?, ?)",
                    [list(v) for v in payload],
                )
            else:
                conn.execute(
                    "LET R = SELECT R WHERE A CONTAINS ?", [payload]
                )
        except db.IntegrityError:
            # Failed statements (e.g. deleting an absent tuple) are part
            # of the scenario: the transaction still rolls back cleanly.
            pass
        except db.Error:
            raise
        except Exception:
            pass
    conn.execute("ROLLBACK")


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    rows=rows_strategy,
    steps=st.lists(dml_step, min_size=1, max_size=6),
    mode=st.sampled_from(["nfr", "1nf"]),
    open_store=st.booleans(),
)
def test_rollback_equals_never_executed(rows, steps, mode, open_store):
    conn = make_conn(rows, mode=mode)
    if open_store:
        conn.execute("ANALYZE R")
    before = snapshot(conn)
    apply_steps(conn, steps)
    after = snapshot(conn)
    assert after == before


@settings(max_examples=25, deadline=None)
@given(
    rows=rows_strategy,
    steps=st.lists(dml_step, min_size=1, max_size=5),
)
def test_commit_equals_autocommit(rows, steps):
    """The dual property: COMMIT leaves exactly the state the same
    statements produce without a transaction."""
    txn = make_conn(rows)
    auto = make_conn(rows)

    txn.execute("BEGIN")
    for conn in (txn, auto):
        for kind, payload in steps:
            try:
                if kind == "insert":
                    conn.execute(
                        "INSERT INTO R VALUES (?, ?, ?)", list(payload)
                    )
                elif kind == "delete":
                    conn.execute(
                        "DELETE FROM R VALUES (?, ?, ?)", list(payload)
                    )
                elif kind == "insertmany":
                    conn.executemany(
                        "INSERT INTO R VALUES (?, ?, ?)",
                        [list(v) for v in payload],
                    )
                else:
                    conn.execute(
                        "LET R = SELECT R WHERE A CONTAINS ?", [payload]
                    )
            except db.IntegrityError:
                pass
            except db.Error:
                raise
            except Exception:
                pass
    txn.execute("COMMIT")
    assert txn.catalog.get("R") == auto.catalog.get("R")
    assert txn.catalog.get("R").to_1nf() == auto.catalog.get("R").to_1nf()


def test_rollback_restores_bytes_after_failed_multistatement():
    """The acceptance scenario, deterministically: a multi-statement
    transaction whose last statement fails, rolled back, restores
    catalog, stores and stats byte-for-byte."""
    conn = make_conn([("a1", "b1", "a2"), ("a2", "b2", "a3")])
    conn.execute("ANALYZE R")
    before = snapshot(conn)
    conn.execute("BEGIN")
    conn.execute("INSERT INTO R VALUES ('a3', 'b1', 'b2')")
    conn.executemany(
        "INSERT INTO R VALUES (?, ?, ?)",
        [("b1", "b1", "b1"), ("b2", "b2", "b2")],
    )
    conn.execute("LET R = SELECT R WHERE A CONTAINS 'a3'")
    with pytest.raises(Exception):
        conn.execute("DELETE FROM R VALUES ('zz', 'zz', 'zz')")
    conn.execute("ROLLBACK")
    assert snapshot(conn) == before
