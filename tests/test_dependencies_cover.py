"""Tests for repro.dependencies.cover."""

from repro.dependencies.closure import fds_equivalent
from repro.dependencies.cover import group_by_lhs, minimal_cover
from repro.dependencies.fd import FunctionalDependency as FD


class TestMinimalCover:
    def test_cover_is_equivalent(self):
        fds = [FD.parse("A -> B, C"), FD.parse("B -> C"), FD.parse("A -> B")]
        cover = minimal_cover(fds)
        assert fds_equivalent(cover, fds)

    def test_redundant_fd_removed(self):
        fds = [FD.parse("A -> B"), FD.parse("B -> C"), FD.parse("A -> C")]
        cover = minimal_cover(fds)
        assert FD.parse("A -> C") not in cover
        assert len(cover) == 2

    def test_extraneous_lhs_attribute_removed(self):
        fds = [FD.parse("A -> B"), FD.parse("A, B -> C")]
        cover = minimal_cover(fds)
        assert FD.parse("A -> C") in cover

    def test_singleton_rhs(self):
        cover = minimal_cover([FD.parse("A -> B, C")])
        assert all(len(fd.rhs) == 1 for fd in cover)

    def test_trivial_fds_dropped(self):
        cover = minimal_cover([FD.parse("A -> A"), FD.parse("A -> B")])
        assert cover == {FD.parse("A -> B")}

    def test_deterministic(self):
        fds = [FD.parse("A -> B"), FD.parse("B -> C"), FD.parse("C -> A")]
        assert minimal_cover(fds) == minimal_cover(list(reversed(fds)))

    def test_empty_input(self):
        assert minimal_cover([]) == frozenset()


class TestGroupByLhs:
    def test_merges_same_lhs(self):
        groups = group_by_lhs([FD.parse("A -> B"), FD.parse("A -> C")])
        assert groups == {frozenset({"A"}): frozenset({"B", "C"})}

    def test_distinct_lhs_stay_separate(self):
        groups = group_by_lhs([FD.parse("A -> B"), FD.parse("B -> C")])
        assert len(groups) == 2
