"""Property-based tests for snapshot isolation.

Two properties pin the concurrency tier down:

1. **Serial equivalence** — run a generated batch of transactions on
   concurrent threads under snapshot isolation; the surviving
   (committed) transactions, replayed *serially* in commit-CSN order
   against a sequential flat-set model, must produce exactly the final
   R*.  First-writer-wins makes this hold: conflicting writers never
   both commit, so the committed subset is serializable by
   construction — and this test checks the whole machine (locks,
   workspaces, version histories, commit replay) against the model.

2. **Aborted transactions leave no trace, byte-for-byte** — a durable
   database cycled open→aborted-transactions→close produces the same
   files, to the byte, as one cycled open→close with no transactions
   at all.
"""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.db
from repro.errors import FlatTupleNotFoundError, SerializationError
from repro.relational.relation import Relation

BASE_ROWS = [("a1", "b1"), ("a1", "b2"), ("a2", "b1")]


def _base():
    return Relation.from_rows(["A", "B"], list(BASE_ROWS))


def _flats(database):
    session = database.session()
    try:
        session.execute("FLATTEN E")
        return frozenset(
            tuple(sorted(c)[0] for c in row) for row in session.fetchall()
        )
    finally:
        session.close()


values = st.tuples(
    st.sampled_from(["a1", "a2", "a3", "a4"]),
    st.sampled_from(["b1", "b2", "b3"]),
)
ops = st.lists(
    st.tuples(st.sampled_from(["insert", "delete"]), values),
    min_size=1,
    max_size=4,
)
txn_batches = st.lists(ops, min_size=2, max_size=6)


def _run_txn(manager, script):
    """One transaction: apply the script, commit.  Returns the
    effective journal (ops that actually landed) on commit, None on a
    first-writer-wins abort."""
    txn = manager.begin()
    journal = []
    try:
        for kind, row in script:
            if kind == "insert":
                if txn.insert("E", list(row)):
                    journal.append(("insert", row))
            else:
                try:
                    txn.delete("E", list(row))
                    journal.append(("delete", row))
                except FlatTupleNotFoundError:
                    pass  # absent in this snapshot: statement no-op
        manager.commit(txn)
        return txn.commit_csn, journal
    except SerializationError:
        manager.rollback(txn)
        return None


class TestSerialEquivalence:
    @given(txn_batches)
    @settings(max_examples=25, deadline=None)
    def test_committed_transactions_form_a_serial_order(self, batch):
        database = repro.db.Database()
        database.register("E", _base(), mode="1nf")
        manager = database.transactions
        results = []
        lock = threading.Lock()

        def worker(script):
            outcome = _run_txn(manager, script)
            if outcome is not None:
                with lock:
                    results.append(outcome)

        threads = [
            threading.Thread(target=worker, args=(script,))
            for script in batch
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Sequential model: replay each committed journal in CSN order.
        expected = set(BASE_ROWS)
        for _, journal in sorted(
            results, key=lambda r: r[0] if r[0] is not None else 0
        ):
            for kind, row in journal:
                if kind == "insert":
                    expected.add(row)
                else:
                    expected.discard(row)
        assert _flats(database) == frozenset(expected)

    @given(txn_batches)
    @settings(max_examples=10, deadline=None)
    def test_serial_order_matches_single_writer_engine(self, batch):
        """The same journals replayed through the classic single-writer
        facade reach the same relation — SI committed work is ordinary
        serial work."""
        concurrent = repro.db.Database()
        concurrent.register("E", _base(), mode="1nf")
        manager = concurrent.transactions
        results = []
        lock = threading.Lock()

        def worker(script):
            outcome = _run_txn(manager, script)
            if outcome is not None:
                with lock:
                    results.append(outcome)

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in batch
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        serial = repro.db.connect()
        serial.database.register("E", _base(), mode="1nf")
        for _, journal in sorted(
            results, key=lambda r: r[0] if r[0] is not None else 0
        ):
            for kind, (a, b) in journal:
                if kind == "insert":
                    serial.execute(f"INSERT INTO E VALUES ('{a}', '{b}')")
                else:
                    serial.execute(f"DELETE FROM E VALUES ('{a}', '{b}')")
        serial_rel = serial.execute("FLATTEN E").result_relation()
        serial_flats = frozenset(
            tuple(t.values) for t in serial_rel.to_1nf().sorted_tuples()
        )
        assert _flats(concurrent) == serial_flats


def _cycle(path, scripts):
    """Open the durable database, run every script as a transaction
    that always rolls back, close.  Returns {filename: bytes}."""
    database = repro.db.Database(path=str(path / "t.db"))
    manager = database.transactions
    for script in scripts:
        txn = manager.begin()
        try:
            for kind, row in script:
                try:
                    if kind == "insert":
                        txn.insert("E", list(row))
                    else:
                        txn.delete("E", list(row))
                except FlatTupleNotFoundError:
                    pass
        except SerializationError:
            pass
        manager.rollback(txn)
    database.close()
    return {
        f.name: f.read_bytes()
        for f in sorted(path.iterdir())
        if f.is_file()
    }


class TestAbortedLeavesNoTrace:
    @given(st.lists(ops, min_size=1, max_size=5))
    @settings(max_examples=15, deadline=None)
    def test_rolled_back_transactions_are_invisible_on_disk(
        self, tmp_path_factory, scripts
    ):
        path = tmp_path_factory.mktemp("mvcc_trace")
        seed = repro.db.Database(path=str(path / "t.db"))
        seed.register("E", _base(), mode="1nf")
        session = seed.session()
        session.execute("INSERT INTO E VALUES ('c1', 'd1')")
        session.close()
        seed.close()

        control = _cycle(path, [])
        with_aborts = _cycle(path, scripts)
        assert with_aborts == control, (
            "aborted transactions changed the database files"
        )
