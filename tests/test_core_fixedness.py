"""Tests for repro.core.fixedness (Definition 7, Theorems 3-5)."""

import pytest

from repro.core.canonical import canonical_form
from repro.core.fixedness import (
    canonical_fixed_on_determinant,
    check_theorem3,
    check_theorem4_exists,
    determinant_fixed_order,
    fixed_domains,
    fixedness_witness,
    is_fixed,
    maximal_fixed_sets,
    theorem5_fixed_set,
)
from repro.core.irreducible import enumerate_irreducible_forms
from repro.core.nfr_relation import NFRelation
from repro.dependencies.fd import FunctionalDependency as FD
from repro.dependencies.mvd import MultivaluedDependency as MVD
from repro.errors import NFRError
from repro.relational.relation import Relation
from repro.workloads.paper_examples import (
    EXAMPLE1_R,
    EXAMPLE1_R1,
    EXAMPLE1_R2,
    EXAMPLE3_MVD,
    EXAMPLE3_R5,
    EXAMPLE3_R7,
    EXAMPLE3_R8,
)


class TestDefinition7:
    def test_example1_original_not_fixed_on_any_domain(self):
        lifted = NFRelation.from_1nf(EXAMPLE1_R)
        assert fixed_domains(lifted) == frozenset()

    def test_example1_r1_fixed_on_b(self):
        assert is_fixed(EXAMPLE1_R1, ["B"])
        assert not is_fixed(EXAMPLE1_R1, ["A"])  # a2 is in both tuples

    def test_example1_r2_fixed_on_a(self):
        assert is_fixed(EXAMPLE1_R2, ["A"])
        assert not is_fixed(EXAMPLE1_R2, ["B"])

    def test_fixedness_on_smaller_set_is_stronger(self):
        # fixed on {A} implies fixed on {A, B}
        assert is_fixed(EXAMPLE1_R2, ["A", "B"])

    def test_witness(self):
        witness = fixedness_witness(EXAMPLE1_R1, ["A"])
        assert witness is not None
        combo, t1, t2 = witness
        assert combo == ("a2",)
        assert t1 != t2

    def test_no_witness_when_fixed(self):
        assert fixedness_witness(EXAMPLE1_R2, ["A"]) is None

    def test_empty_attribute_list_rejected(self):
        with pytest.raises(NFRError):
            is_fixed(EXAMPLE1_R1, [])

    def test_maximal_fixed_sets(self):
        sets = maximal_fixed_sets(EXAMPLE1_R2)
        assert frozenset({"A"}) in sets


class TestTheorem3:
    def test_key_fd_makes_every_irreducible_form_fixed(self):
        # FD A -> B, C over {A, B, C}: the determinant is a key, the
        # setting of the theorem's proof ("R* is fixed on F1..Fk").
        rel = Relation.from_rows(
            ["A", "B", "C"],
            [
                ("a1", "b1", "c1"),
                ("a2", "b1", "c1"),
                ("a3", "b1", "c2"),
                ("a4", "b2", "c1"),
            ],
        )
        fd = FD(["A"], ["B", "C"])
        assert fd.holds_in(rel)
        for form in enumerate_irreducible_forms(rel):
            flags = check_theorem3(rel, fd, form)
            assert all(flags.values()), (form.to_table(), flags)

    def test_partial_fd_precondition_flag_goes_false(self):
        # With a *partial* FD (A -> B but A not a key) the theorem's
        # precondition fails and so may the conclusion; the checker
        # reports the precondition honestly.
        rel = Relation.from_rows(
            ["A", "B", "C"],
            [
                ("a1", "b1", "c1"),
                ("a1", "b1", "c2"),
                ("a2", "b1", "c1"),
                ("a3", "b2", "c1"),
            ],
        )
        fd = FD(["A"], ["B"])
        assert fd.holds_in(rel)
        flags_seen = [
            check_theorem3(rel, fd, form)
            for form in enumerate_irreducible_forms(rel)
        ]
        assert all(not f["determinant_is_key"] for f in flags_seen)
        # ... and indeed some irreducible form is NOT fixed on A:
        assert any(not f["fixed_on_determinant"] for f in flags_seen)


class TestTheorem4:
    def test_some_irreducible_form_fixed_under_mvd(self):
        form, flags = check_theorem4_exists(EXAMPLE3_R5, EXAMPLE3_MVD)
        assert all(flags.values())
        assert form == EXAMPLE3_R7

    def test_not_all_forms_fixed_example3(self):
        # R8 is irreducible but not fixed on A — the theorem's "may exist
        # an irreducible form which is not fixed".
        assert EXAMPLE3_R8.to_1nf() == EXAMPLE3_R5
        assert not is_fixed(EXAMPLE3_R8, ["A"])


class TestTheorem5:
    def test_canonical_fixed_on_all_but_first_nested(self):
        rel = EXAMPLE3_R5
        for order in (["A", "B", "C"], ["B", "C", "A"], ["C", "A", "B"]):
            form = canonical_form(rel, order)
            assert is_fixed(form, theorem5_fixed_set(order))

    def test_theorem5_fixed_set(self):
        assert theorem5_fixed_set(["A", "B", "C"]) == ["B", "C"]

    def test_degree_one_rejected(self):
        with pytest.raises(NFRError):
            theorem5_fixed_set(["A"])


class TestDesignStrategy:
    def test_determinant_fixed_order_shape(self):
        order = determinant_fixed_order(("A", "B", "C"), {"A"})
        assert order == ["B", "C", "A"]

    def test_composite_determinant(self):
        order = determinant_fixed_order(("A", "B", "C", "D"), {"A", "C"})
        assert order == ["B", "D", "A", "C"]

    def test_unknown_determinant_rejected(self):
        with pytest.raises(NFRError):
            determinant_fixed_order(("A", "B"), {"Z"})

    def test_determinant_covering_universe_rejected(self):
        with pytest.raises(NFRError):
            determinant_fixed_order(("A", "B"), {"A", "B"})

    def test_strategy_on_example3(self):
        order, form = canonical_fixed_on_determinant(
            EXAMPLE3_R5, EXAMPLE3_MVD
        )
        assert order == ["B", "C", "A"]
        assert form == EXAMPLE3_R7
        assert is_fixed(form, ["A"])

    def test_strategy_with_fd(self):
        rel = Relation.from_rows(
            ["A", "B", "C"],
            [("a1", "b1", "c1"), ("a1", "b1", "c2"), ("a2", "b2", "c1")],
        )
        fd = FD(["A"], ["B"])
        order, form = canonical_fixed_on_determinant(rel, fd)
        assert is_fixed(form, ["A"])
        assert form.to_1nf() == rel
