"""Tests for repro.core.cardinality (Definition 6)."""

from repro.core.cardinality import (
    Cardinality,
    classify_all,
    classify_attribute,
    value_occurrences,
)
from repro.core.nfr_relation import NFRelation


def nfr(rows):
    return NFRelation.from_components(["A", "B"], rows)


class TestLattice:
    def test_from_flags(self):
        assert Cardinality.from_flags(False, False) is Cardinality.ONE_ONE
        assert Cardinality.from_flags(False, True) is Cardinality.N_ONE
        assert Cardinality.from_flags(True, False) is Cardinality.ONE_N
        assert Cardinality.from_flags(True, True) is Cardinality.M_N

    def test_join(self):
        assert (
            Cardinality.N_ONE.join(Cardinality.ONE_N) is Cardinality.M_N
        )
        assert (
            Cardinality.ONE_ONE.join(Cardinality.ONE_ONE)
            is Cardinality.ONE_ONE
        )

    def test_order(self):
        assert Cardinality.ONE_ONE.le(Cardinality.M_N)
        assert Cardinality.ONE_N.le(Cardinality.M_N)
        assert not Cardinality.M_N.le(Cardinality.ONE_N)
        assert not Cardinality.N_ONE.le(Cardinality.ONE_N)

    def test_str_uses_paper_notation(self):
        assert str(Cardinality.M_N) == "m:n"


class TestClassification:
    def test_one_one(self):
        # every value in exactly one tuple, all singleton components
        r = nfr([(["a1"], ["b1"]), (["a2"], ["b2"])])
        assert classify_attribute(r, "A") is Cardinality.ONE_ONE

    def test_n_one(self):
        # a1, a2 share one tuple inside a set component
        r = nfr([(["a1", "a2"], ["b1"])])
        assert classify_attribute(r, "A") is Cardinality.N_ONE
        assert classify_attribute(r, "B") is Cardinality.ONE_ONE

    def test_one_n(self):
        # b1 appears in two tuples, always as a singleton
        r = nfr([(["a1"], ["b1"]), (["a2"], ["b1"])])
        assert classify_attribute(r, "B") is Cardinality.ONE_N

    def test_m_n(self):
        # b1 appears in two tuples, once inside a set
        r = nfr([(["a1"], ["b1", "b2"]), (["a2"], ["b1"])])
        assert classify_attribute(r, "B") is Cardinality.M_N

    def test_example3_r7_is_mn_on_dependents(self):
        from repro.workloads.paper_examples import EXAMPLE3_R7

        assert classify_attribute(EXAMPLE3_R7, "B") is Cardinality.M_N
        assert classify_attribute(EXAMPLE3_R7, "C") is Cardinality.M_N
        # A values each in exactly one tuple as singletons:
        assert classify_attribute(EXAMPLE3_R7, "A") is Cardinality.ONE_ONE

    def test_classify_all(self):
        r = nfr([(["a1", "a2"], ["b1"]), (["a3"], ["b1"])])
        out = classify_all(r)
        assert out["A"] is Cardinality.N_ONE
        assert out["B"] is Cardinality.ONE_N

    def test_empty_relation_classifies_one_one(self, ab_schema):
        assert (
            classify_attribute(NFRelation(ab_schema), "A")
            is Cardinality.ONE_ONE
        )


class TestOccurrences:
    def test_counts(self):
        r = nfr([(["a1", "a2"], ["b1"]), (["a1"], ["b2"])])
        occ = value_occurrences(r, "A")
        assert occ["a1"].tuple_count == 2
        assert occ["a1"].max_component_size == 2
        assert occ["a2"].tuple_count == 1

    def test_occurrence_cardinality(self):
        r = nfr([(["a1", "a2"], ["b1"]), (["a1"], ["b2"])])
        occ = value_occurrences(r, "A")
        assert occ["a1"].cardinality is Cardinality.M_N
        assert occ["a2"].cardinality is Cardinality.N_ONE
