"""Hash-partitioned shards: routing, facade parity, planner pruning,
durable recovery, and the adaptive buffer-pool policy.

A :class:`~repro.storage.shards.ShardedStore` must be observationally
identical to the single :class:`~repro.storage.engine.NFRStore` it
partitions — every lookup, scan, and mutation answers the same — while
routing each flat to the shard its partition atom hashes to.  The
planner prunes to one shard when an equality conjunct pins the
partition attribute, and the durable engine recovers all shards to one
consistent commit epoch.
"""

import os

import pytest

import repro.db as db
from repro.errors import StorageError
from repro.planner import physical as P
from repro.planner import plan
from repro.query import Catalog, parse, run
from repro.relational.relation import Relation
from repro.relational.tuples import FlatTuple
from repro.storage.bufferpool import BufferPool
from repro.storage.engine import NFRStore
from repro.storage.filemgr import FileManager
from repro.storage.shards import ShardedStore, routing_bytes, shard_of_atom

ATTRS = ["K", "A", "B"]


def _rel(n=40):
    return Relation.from_rows(
        ATTRS, [(f"k{i:03d}", f"a{i % 5}", i % 7) for i in range(n)]
    )


def _flat(*row):
    return FlatTuple(_rel(1).schema, list(row))


class TestRouting:
    def test_routing_bytes_distinguish_types(self):
        assert routing_bytes("1") != routing_bytes(1)
        assert routing_bytes("x") != routing_bytes(("x",))

    def test_python_equal_numbers_colocate(self):
        # 1 == 1.0 == True in Python, so they must land on one shard
        # or equal flats could dodge duplicate detection.
        assert routing_bytes(1) == routing_bytes(1.0) == routing_bytes(True)

    def test_shard_of_atom_in_range_and_stable(self):
        for n in (1, 2, 3, 4, 7):
            for v in ("k001", 17, -3, 2.5, None, ("a", "b")):
                s = shard_of_atom(v, n)
                assert 0 <= s < n
                assert s == shard_of_atom(v, n)

    def test_store_routes_by_partition_attribute(self):
        store = ShardedStore.from_relation(_rel(), nshards=4)
        assert store.partition_attr == "K"
        for shard_index, shard in enumerate(store.shards):
            flats, _ = shard.full_scan()
            for flat in flats:
                assert shard_of_atom(flat["K"], 4) == shard_index


class TestFacadeParity:
    @pytest.mark.parametrize("nshards", [1, 2, 4])
    def test_lookup_and_scan_match_single_store(self, nshards):
        rel = _rel()
        single = NFRStore.from_relation(rel)
        sharded = ShardedStore.from_relation(rel, nshards=nshards)
        assert sharded.to_1nf() == single.to_1nf() == rel
        for conditions in ([], [("K", "k007")], [("A", "a2"), ("B", 3)]):
            for use_index in (False, True):
                want, _ = single.lookup(conditions, use_index=use_index)
                got, _ = sharded.lookup(conditions, use_index=use_index)
                assert sorted(map(repr, got)) == sorted(map(repr, want))

    def test_mutations_track_single_store(self):
        rel = _rel(20)
        single = NFRStore.from_relation(rel)
        sharded = ShardedStore.from_relation(rel, nshards=3)
        new = _flat("k999", "a9", 99)
        assert sharded.insert_flat(new)[0] == single.insert_flat(new)[0]
        assert sharded.insert_flat(new)[0] == single.insert_flat(new)[0]
        sharded.delete_flat(new)
        single.delete_flat(new)
        # cross-shard move: old and new route differently
        old = _flat("k001", "a1", 1)
        moved = _flat("k998", "a1", 1)
        assert sharded.update_flat(old, moved)[0]
        assert single.update_flat(old, moved)[0]
        assert sorted(map(repr, sharded.full_scan()[0])) == sorted(
            map(repr, single.full_scan()[0])
        )

    def test_views_aggregate_over_shards(self):
        sharded = ShardedStore.from_relation(_rel(), nshards=4)
        assert sharded.heap.page_count == sum(
            s.heap.page_count for s in sharded.shards
        )
        assert sharded.heap.record_count == sum(
            s.heap.record_count for s in sharded.shards
        )

    def test_coordinator_remap_round_trips_batches(self):
        sharded = ShardedStore.from_relation(_rel(), nshards=4)
        got = []
        for batch in sharded.stream_scan_columns(None, batch_rows=7):
            got.extend(batch.to_rows(sharded.schema))
        want = list(NFRStore.from_relation(_rel()).stream_scan())
        assert sorted(map(repr, got)) == sorted(map(repr, want))


class TestPlannerPruning:
    def _catalog(self, nshards=4):
        catalog = Catalog()
        catalog.default_shards = nshards
        catalog.register("T", _rel(), mode="1nf")
        run("ANALYZE T", catalog)
        return catalog

    def test_partition_equality_prunes_to_one_shard(self):
        catalog = self._catalog()
        store = catalog.store_for("T")
        target = store.shard_of("k007")
        before = [s.stats_window() for s in store.shards]
        result = plan(
            parse("SELECT T WHERE K CONTAINS 'k007'"), catalog
        ).execute()
        after = [s.stats_window() for s in store.shards]
        assert result.cardinality == 1
        touched = [
            i
            for i, (b, a) in enumerate(zip(before, after))
            if a[0] - b[0] > 0 or a[2] - b[2] > 0
        ]
        assert touched == [target]

    def test_contradictory_partition_atoms_plan_empty(self):
        catalog = self._catalog()
        store = catalog.store_for("T")
        # two values that route to different shards cannot both be the
        # partition atom of one tuple's K component
        a, b = "k001", "k002"
        assert store.shard_of(a) != store.shard_of(b)
        physical = plan(
            parse(f"SELECT T WHERE K = '{a}' AND K = '{b}'"), catalog
        )
        assert isinstance(physical.root, P.EmptyResult)
        assert physical.execute().cardinality == 0

    def test_parameter_never_prunes_at_plan_time(self):
        catalog = self._catalog()
        physical = plan(parse("SELECT T WHERE K CONTAINS ?"), catalog)
        # one cached plan must serve bindings routed to any shard
        for key in ("k001", "k002", "k003", "k004"):
            physical.params.bind([key])
            assert physical.execute().cardinality == 1

    def test_full_scan_stays_serial_without_parallel_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        physical = plan(parse("T"), self._catalog())
        assert not isinstance(physical.root, P.ParallelShardScan)
        assert physical.execute().cardinality == 40

    def test_full_scan_fans_out_with_parallel_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "1")
        catalog = self._catalog()
        physical = plan(parse("T"), catalog)
        assert isinstance(physical.root, P.ParallelShardScan)
        serial = plan(parse("T"), catalog, use_index=False)
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        want = serial.execute()
        monkeypatch.setenv("REPRO_PARALLEL", "1")
        assert physical.execute() == want
        assert physical.root.actual_rows == 40


class TestDurableSharding:
    def _seed(self, path, shards=None, rows=30):
        conn = db.connect(path, shards=shards)
        conn.database.register("T", _rel(rows))
        conn.execute("INSERT INTO T VALUES ('k900', 'a9', 9)")
        return conn

    def test_round_trip_is_byte_identical(self, tmp_path):
        path = tmp_path / "s.db"
        conn = self._seed(path, shards=4)
        query = "SELECT T WHERE A CONTAINS 'a2'"
        before = sorted(map(repr, conn.execute(query).fetchall()))
        conn.database.close()
        assert {p.name for p in tmp_path.iterdir()} >= {
            "s.db", "s.db.s1", "s.db.s2", "s.db.s3",
        }
        conn = db.connect(path)
        assert sorted(map(repr, conn.execute(query).fetchall())) == before
        assert conn.catalog.store_for("T").nshards == 4
        conn.database.close()

    def test_crash_discards_uncommitted_cross_shard_writes(self, tmp_path):
        path = tmp_path / "c.db"
        conn = self._seed(path, shards=3)
        committed = sorted(map(repr, conn.execute("T").fetchall()))
        conn.execute("BEGIN")
        for i in range(10):
            conn.execute(f"INSERT INTO T VALUES ('x{i}', 'a0', 0)")
        conn.database.engine.abandon()  # crash before COMMIT
        conn = db.connect(path)
        assert (
            sorted(map(repr, conn.execute("T").fetchall()))
            == committed
        )
        conn.database.close()

    def test_torn_epoch_commit_is_rolled_back_everywhere(self, tmp_path):
        path = tmp_path / "t.db"
        conn = self._seed(path, shards=3)
        committed = sorted(map(repr, conn.execute("T").fetchall()))
        conn.execute("BEGIN")
        for i in range(10):
            conn.execute(f"INSERT INTO T VALUES ('y{i}', 'a0', 0)")
        engine = conn.database.engine
        # a torn commit: the side shards' WALs record the new epoch but
        # the crash hits before partition 0 logs the global decision
        epoch = engine.epoch + 1
        for part in engine.partitions[1:]:
            if part.wal.in_flight:
                part.wal.commit(epoch=epoch)
        engine.abandon()
        conn = db.connect(path)
        assert (
            sorted(map(repr, conn.execute("T").fetchall()))
            == committed
        )
        conn.database.close()

    def test_shard_count_mismatch_is_rejected(self, tmp_path):
        path = tmp_path / "m.db"
        self._seed(path, shards=2).database.close()
        with pytest.raises(StorageError, match="re-shard"):
            db.connect(path, shards=4)
        conn = db.connect(path, shards=2)  # matching count is fine
        conn.database.close()

    def test_checkpoint_truncates_every_shard_wal(self, tmp_path):
        path = tmp_path / "w.db"
        conn = self._seed(path, shards=3)
        conn.database.checkpoint()
        engine = conn.database.engine
        for part in engine.partitions:
            assert part.wal.size == 0
        conn.database.close()


class TestAdaptivePool:
    def _pool(self, tmp_path, **kwargs):
        filemgr = FileManager(tmp_path / "p.db")
        pool = BufferPool(filemgr, capacity=4, **kwargs)
        pids = []
        for i in range(12):
            page = pool.allocate()
            page.insert(b"v%d" % i)
            pids.append(page.page_id)
            pool.release(page.page_id, dirty=True)
        pool.flush_all()
        return pool, pids

    def test_env_flag_selects_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ADAPTIVE_POOL", "0")
        pool, _ = self._pool(tmp_path)
        assert pool.adaptive is False
        monkeypatch.delenv("REPRO_ADAPTIVE_POOL")
        pool, _ = self._pool(tmp_path)
        assert pool.adaptive is True
        pool, _ = self._pool(tmp_path, adaptive=False)
        assert pool.adaptive is False

    def test_multi_interval_history_survives_scan_flood(self, tmp_path):
        pool, pids = self._pool(tmp_path, adaptive=True)
        hot = pids[0]
        # touch the hot page across many aging intervals
        for _ in range(20 * pool.capacity):
            pool.fetch(hot)
            pool.release(hot)
        # flood with once-touched pages: > capacity distinct victims
        for pid in pids[1:]:
            pool.fetch(pid)
            pool.release(pid)
        assert pool.resident(hot)

    def test_clock_fallback_still_evicts(self, tmp_path):
        pool, pids = self._pool(tmp_path, adaptive=False)
        for pid in pids:
            pool.fetch(pid)
            pool.release(pid)
        assert pool.frame_count <= pool.capacity
        assert pool.stats.evictions > 0

    def test_replay_identical_under_both_policies(self, tmp_path):
        # policies change performance, never contents
        for adaptive in (True, False):
            pool, pids = self._pool(tmp_path, adaptive=adaptive)
            for pid in reversed(pids):
                page = pool.fetch(pid)
                assert page.records()
                pool.release(pid)
