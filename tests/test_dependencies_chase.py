"""Tests for repro.dependencies.chase."""

from repro.dependencies.chase import (
    Tableau,
    chase,
    dependency_basis,
    implies,
    implies_fd,
    implies_mvd,
    is_lossless_join,
)
from repro.dependencies.fd import FunctionalDependency as FD
from repro.dependencies.mvd import MultivaluedDependency as MVD

U = ("A", "B", "C", "D")


class TestFdImplication:
    def test_transitivity(self):
        fds = [FD.parse("A -> B"), FD.parse("B -> C")]
        assert implies_fd(fds, FD.parse("A -> C"), U)

    def test_not_implied(self):
        fds = [FD.parse("A -> B")]
        assert not implies_fd(fds, FD.parse("B -> A"), U)

    def test_mvd_plus_fd_gives_fd(self):
        # X ->-> Y and Y' -> Z interplay: A ->-> B with B -> C over ABC
        # implies A -> C (classical inference rule).
        deps = [MVD(["A"], ["B"]), FD.parse("B -> C")]
        assert implies_fd(deps, FD.parse("A -> C"), ("A", "B", "C"))

    def test_uniform_interface(self):
        fds = [FD.parse("A -> B")]
        assert implies(fds, FD.parse("A -> B"), U)
        assert implies(fds, MVD(["A"], ["B"]), U)


class TestMvdImplication:
    def test_fd_implies_mvd(self):
        assert implies_mvd([FD.parse("A -> B")], MVD(["A"], ["B"]), U)

    def test_complementation_rule(self):
        deps = [MVD(["A"], ["B"])]
        assert implies_mvd(deps, MVD(["A"], ["C", "D"]), U)

    def test_trivial_mvd(self):
        assert implies_mvd([], MVD(["A"], ["A"]), U)
        assert implies_mvd([], MVD(["A"], ["B", "C", "D"]), U)

    def test_unrelated_mvd_not_implied(self):
        deps = [MVD(["A"], ["B"])]
        assert not implies_mvd(deps, MVD(["B"], ["C"]), U)

    def test_augmentation(self):
        deps = [MVD(["A"], ["B"])]
        assert implies_mvd(deps, MVD(["A", "C"], ["B"]), U)


class TestLosslessJoin:
    def test_classic_lossless(self):
        fds = [FD.parse("A -> B")]
        assert is_lossless_join(
            ("A", "B", "C"), [("A", "B"), ("A", "C")], fds
        )

    def test_lossy_without_fd(self):
        assert not is_lossless_join(
            ("A", "B", "C"), [("A", "B"), ("A", "C")], []
        )

    def test_mvd_makes_binary_split_lossless(self):
        deps = [MVD(["A"], ["B"])]
        assert is_lossless_join(
            ("A", "B", "C"), [("A", "B"), ("A", "C")], deps
        )

    def test_uncovered_attribute_is_lossy(self):
        assert not is_lossless_join(("A", "B", "C"), [("A", "B")], [])

    def test_single_component_always_lossless(self):
        assert is_lossless_join(("A", "B"), [("A", "B")], [])


class TestChaseMechanics:
    def test_fd_step_equates_symbols(self):
        t = Tableau(("A", "B"), [(0, 2), (0, 3)])
        chased = chase(t, [FD.parse("A -> B")])
        assert len(chased.rows) == 1

    def test_mvd_step_adds_rows(self):
        t = Tableau(("A", "B", "C"), [(0, 1, 2), (0, 3, 4)])
        chased = chase(t, [MVD(["A"], ["B"])])
        assert (0, 1, 4) in chased.rows
        assert (0, 3, 2) in chased.rows

    def test_chase_is_idempotent(self):
        t = Tableau(("A", "B", "C"), [(0, 1, 2), (0, 3, 4)])
        once = chase(t, [MVD(["A"], ["B"])])
        twice = chase(once, [MVD(["A"], ["B"])])
        assert once.rows == twice.rows


class TestDependencyBasis:
    def test_single_mvd_splits_complement(self):
        deps = [MVD(["A"], ["B"])]
        basis = dependency_basis({"A"}, deps, ("A", "B", "C"))
        assert basis == {frozenset({"B"}), frozenset({"C"})}

    def test_fd_gives_singletons(self):
        deps = [FD.parse("A -> B")]
        basis = dependency_basis({"A"}, deps, ("A", "B", "C"))
        assert frozenset({"B"}) in basis

    def test_no_dependencies_coarse_basis(self):
        basis = dependency_basis({"A"}, [], ("A", "B", "C"))
        assert basis == {frozenset({"B", "C"})}

    def test_basis_covers_complement(self):
        deps = [MVD(["A"], ["B"]), FD.parse("A -> C")]
        basis = dependency_basis({"A"}, deps, ("A", "B", "C", "D"))
        union = frozenset().union(*basis)
        assert union == {"B", "C", "D"}
