"""Tests for repro.core.composition (Definitions 1-2)."""

import pytest

from repro.core.composition import (
    all_composable_pairs,
    composable_attributes,
    composable_on,
    compose,
    decompose,
    split_subset,
)
from repro.core.nfr_tuple import NFRTuple
from repro.core.values import ValueSet
from repro.errors import CompositionError, DecompositionValueError
from repro.relational.schema import RelationSchema
from repro.util.counters import OperationCounter

ABC = RelationSchema(["A", "B", "C"])


def make(a, b, c):
    return NFRTuple(ABC, [a, b, c])


class TestPaperExample:
    """The exact §3.2 example."""

    def test_vb_composition(self):
        t1 = make(["a1", "a2"], ["b1", "b2"], ["c1"])
        t2 = make(["a1", "a2"], ["b3"], ["c1"])
        t3 = compose(t1, t2, "B")
        assert t3 == make(["a1", "a2"], ["b1", "b2", "b3"], ["c1"])

    def test_ub_decomposition_inverts(self):
        t3 = make(["a1", "a2"], ["b1", "b2", "b3"], ["c1"])
        te, tr = decompose(t3, "B", "b3")
        assert te == make(["a1", "a2"], ["b1", "b2"], ["c1"])
        assert tr == make(["a1", "a2"], ["b3"], ["c1"])

    def test_ua_decomposition_other_axis(self):
        # "we also have other two tuples ... by uA(a1)(t3)"
        t3 = make(["a1", "a2"], ["b1", "b2", "b3"], ["c1"])
        te, tr = decompose(t3, "A", "a1")
        assert te == make(["a2"], ["b1", "b2", "b3"], ["c1"])
        assert tr == make(["a1"], ["b1", "b2", "b3"], ["c1"])


class TestComposability:
    def test_composable_on(self):
        r = make(["a1"], ["b1"], ["c1"])
        s = make(["a1"], ["b2"], ["c1"])
        assert composable_on(r, s, "B")
        assert not composable_on(r, s, "A")

    def test_identical_tuples_not_composable(self):
        r = make(["a1"], ["b1"], ["c1"])
        assert not composable_on(r, r, "B")

    def test_two_differences_not_composable(self):
        r = make(["a1"], ["b1"], ["c1"])
        s = make(["a2"], ["b2"], ["c1"])
        assert composable_attributes(r, s) == []

    def test_composable_attributes_single(self):
        r = make(["a1"], ["b1"], ["c1"])
        s = make(["a1"], ["b2", "b3"], ["c1"])
        assert composable_attributes(r, s) == ["B"]

    def test_compose_error_message(self):
        r = make(["a1"], ["b1"], ["c1"])
        s = make(["a2"], ["b2"], ["c1"])
        with pytest.raises(CompositionError):
            compose(r, s, "B")

    def test_unknown_attribute_not_composable(self):
        r = make(["a1"], ["b1"], ["c1"])
        s = make(["a1"], ["b2"], ["c1"])
        assert not composable_on(r, s, "Z")


class TestInformationPreservation:
    """Composition "cannot lose or add any information"."""

    def test_compose_preserves_flats(self):
        r = make(["a1"], ["b1", "b2"], ["c1"])
        s = make(["a1"], ["b3"], ["c1"])
        merged = compose(r, s, "B")
        assert set(merged.flats()) == set(r.flats()) | set(s.flats())

    def test_compose_with_overlapping_components(self):
        r = make(["a1"], ["b1", "b2"], ["c1"])
        s = make(["a1"], ["b2", "b3"], ["c1"])
        merged = compose(r, s, "B")
        assert set(merged.flats()) == set(r.flats()) | set(s.flats())

    def test_decompose_partitions_flats(self):
        t = make(["a1", "a2"], ["b1", "b2"], ["c1"])
        te, tr = decompose(t, "A", "a1")
        assert set(te.flats()) | set(tr.flats()) == set(t.flats())
        assert set(te.flats()).isdisjoint(set(tr.flats()))


class TestDecompositionErrors:
    def test_absent_value_raises(self):
        with pytest.raises(DecompositionValueError):
            decompose(make(["a1", "a2"], ["b1"], ["c1"]), "A", "zz")

    def test_singleton_component_raises(self):
        with pytest.raises(DecompositionValueError):
            decompose(make(["a1"], ["b1"], ["c1"]), "A", "a1")


class TestCounterCharging:
    def test_compose_counts_one(self):
        c = OperationCounter()
        r = make(["a1"], ["b1"], ["c1"])
        s = make(["a1"], ["b2"], ["c1"])
        compose(r, s, "B", counter=c)
        assert c.compositions == 1

    def test_decompose_counts_one(self):
        c = OperationCounter()
        decompose(make(["a1", "a2"], ["b1"], ["c1"]), "A", "a1", counter=c)
        assert c.decompositions == 1

    def test_split_subset_charges_k_and_k_minus_1(self):
        c = OperationCounter()
        t = make(["a1", "a2", "a3", "a4"], ["b1"], ["c1"])
        remainder, extracted = split_subset(
            t, "A", ValueSet(["a1", "a2"]), counter=c
        )
        assert c.decompositions == 2
        assert c.compositions == 1
        assert remainder == make(["a3", "a4"], ["b1"], ["c1"])
        assert extracted == make(["a1", "a2"], ["b1"], ["c1"])

    def test_split_subset_whole_component_free(self):
        c = OperationCounter()
        t = make(["a1", "a2"], ["b1"], ["c1"])
        remainder, extracted = split_subset(
            t, "A", ValueSet(["a1", "a2"]), counter=c
        )
        assert remainder is None
        assert extracted == t
        assert c.total_structural == 0

    def test_split_subset_not_subset_raises(self):
        t = make(["a1"], ["b1"], ["c1"])
        with pytest.raises(DecompositionValueError):
            split_subset(t, "A", ValueSet(["zz"]))


class TestPairEnumeration:
    def test_all_composable_pairs_deterministic(self):
        r = make(["a1"], ["b1"], ["c1"])
        s = make(["a1"], ["b2"], ["c1"])
        u = make(["a2"], ["b9"], ["c9"])
        pairs1 = list(all_composable_pairs({r, s, u}))
        pairs2 = list(all_composable_pairs({u, s, r}))
        assert pairs1 == pairs2
        assert len(pairs1) == 1
        assert pairs1[0][2] == "B"
