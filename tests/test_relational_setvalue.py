"""Tests for repro.relational.setvalue — the §2 power-set domains.

The paper's own example drives these tests: SC[Student, Course] where a
course *set* is just shorthand for several flat tuples, versus
CP[Course, Prerequisite] where the prerequisite set is one indivisible
value and "we may have (co, {{c1, c2}, {c1, c3}})".
"""

import pytest

from repro.core.canonical import canonical_form
from repro.core.nest import nest
from repro.core.nfr_relation import NFRelation
from repro.core.update import CanonicalNFR
from repro.errors import DomainError
from repro.relational.attribute import is_atomic
from repro.relational.relation import Relation
from repro.relational.setvalue import SetValue


class TestSetValueBasics:
    def test_is_atomic(self):
        assert is_atomic(SetValue(["c1", "c2"]))

    def test_value_semantics(self):
        assert SetValue(["c1", "c2"]) == SetValue(["c2", "c1"])
        assert len({SetValue(["c1"]), SetValue(["c1"])}) == 1

    def test_membership_and_len(self):
        sv = SetValue(["c1", "c2"])
        assert "c1" in sv
        assert len(sv) == 2

    def test_nested_set_values(self):
        outer = SetValue([SetValue(["c1", "c2"]), SetValue(["c1", "c3"])])
        assert len(outer) == 2
        assert SetValue(["c1", "c2"]) in outer

    def test_raw_containers_rejected(self):
        with pytest.raises(DomainError):
            SetValue([{"c1", "c2"}])

    def test_rendering_deterministic(self):
        assert str(SetValue(["c2", "c1"])) == "{c1, c2}"

    def test_ordering_for_tables(self):
        a, b = SetValue(["c1"]), SetValue(["c2"])
        assert (a < b) or (b < a)


class TestPaperSection2:
    """The SC-vs-CP contrast, exactly as §2 describes it."""

    def test_sc_sets_split_into_flat_tuples(self):
        # SC contains (a, {c1, c2}): "two tuples (a, c1) and (a, c2) are
        # in SC.  In this case the {c1, c2} has no special meaning."
        sc = NFRelation.from_components(
            ["Student", "Course"], [(["a"], ["c1", "c2"])]
        )
        flats = {tuple(f.values) for f in sc.to_1nf()}
        assert flats == {("a", "c1"), ("a", "c2")}

    def test_cp_sets_do_not_split(self):
        # CP contains (co, {c1, c2}) and (co, {c1, c3}): two DISTINCT
        # flat tuples, because Prerequisite ranges over a power set.
        cp = Relation.from_rows(
            ["Course", "Prerequisite"],
            [
                ("co", SetValue(["c1", "c2"])),
                ("co", SetValue(["c1", "c3"])),
            ],
        )
        assert cp.cardinality == 2  # nothing merged, nothing split

    def test_cp_nests_into_sets_of_sets(self):
        # "Moreover, we may have (co, {{c1, c2}, {c1, c3}})" — that is
        # exactly what nesting CP on Prerequisite produces.
        cp = Relation.from_rows(
            ["Course", "Prerequisite"],
            [
                ("co", SetValue(["c1", "c2"])),
                ("co", SetValue(["c1", "c3"])),
            ],
        )
        nested = nest(NFRelation.from_1nf(cp), "Prerequisite")
        assert nested.cardinality == 1
        [tuple_] = nested.sorted_tuples()
        component = tuple_["Prerequisite"]
        assert set(component) == {
            SetValue(["c1", "c2"]),
            SetValue(["c1", "c3"]),
        }

    def test_canonical_and_updates_work_over_setvalues(self):
        cp = Relation.from_rows(
            ["Course", "Prerequisite"],
            [
                ("co", SetValue(["c1", "c2"])),
                ("co", SetValue(["c1", "c3"])),
                ("cx", SetValue(["c1", "c2"])),
            ],
        )
        form = canonical_form(cp, ["Course", "Prerequisite"])
        assert form.to_1nf() == cp

        store = CanonicalNFR(cp, ["Course", "Prerequisite"], validate=True)
        store.insert_values("cy", SetValue(["c9"]))
        store.delete_values("co", SetValue(["c1", "c3"]))
        expected = (
            cp.with_tuple(
                next(iter(Relation.from_rows(
                    ["Course", "Prerequisite"],
                    [("cy", SetValue(["c9"]))],
                )))
            ).without_tuple(
                next(iter(Relation.from_rows(
                    ["Course", "Prerequisite"],
                    [("co", SetValue(["c1", "c3"]))],
                )))
            )
        )
        assert store.to_1nf() == expected

    def test_deleting_a_prerequisite_alternative_is_tuple_level(self):
        # §2's point: dropping one prerequisite ALTERNATIVE of co is a
        # flat-tuple deletion (the set value is the unit), unlike SC
        # where dropping one course edits inside a component.
        cp = Relation.from_rows(
            ["Course", "Prerequisite"],
            [
                ("co", SetValue(["c1", "c2"])),
                ("co", SetValue(["c1", "c3"])),
            ],
        )
        smaller = cp.without_tuple(
            next(
                t
                for t in cp
                if t["Prerequisite"] == SetValue(["c1", "c3"])
            )
        )
        assert smaller.cardinality == 1
