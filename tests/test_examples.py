"""Smoke tests: every example script runs to completion.

Examples are part of the public surface; they must keep working as the
library evolves.  Each is executed in-process (imported as a module and
``main()`` called) with stdout captured.
"""

import importlib.util
import io
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def _run_example(name: str) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    captured = io.StringIO()
    old_stdout = sys.stdout
    sys.stdout = captured
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.stdout = old_stdout
    return captured.getvalue()


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    output = _run_example(name)
    assert output.strip(), f"example {name} produced no output"


def test_expected_examples_present():
    assert set(EXAMPLES) >= {
        "quickstart",
        "university_registrar",
        "schema_design",
        "query_language",
        "storage_engine",
    }


def test_quickstart_shows_compression():
    output = _run_example("quickstart")
    assert "flat tuples ->" in output


def test_registrar_reproduces_fig2():
    output = _run_example("university_registrar")
    assert "canonical form maintained: True" in output
