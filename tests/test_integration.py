"""Cross-module integration tests: full workflows a downstream user
would run, exercising several subsystems together."""

from repro.analysis.compression import compression_report
from repro.core.canonical import canonical_form
from repro.core.fixedness import (
    canonical_fixed_on_determinant,
    is_fixed,
)
from repro.core.update import CanonicalNFR
from repro.dependencies.decomposition import (
    apply_decomposition,
    decompose_4nf,
    rejoin,
)
from repro.dependencies.discovery import discover_mvds
from repro.dependencies.fd import FunctionalDependency as FD
from repro.dependencies.mvd import MultivaluedDependency as MVD
from repro.dependencies.normalforms import is_4nf
from repro.dependencies.synthesis import synthesize_3nf, verify_synthesis
from repro.query import Catalog, run
from repro.relational.algebra import project
from repro.relational.relation import Relation
from repro.storage.engine import NFRStore
from repro.workloads.university import UniversityConfig, enrollment


class TestDesignPipeline:
    """The §3.4 workflow: discover dependencies, choose the nest order,
    build the fixed canonical NFR, maintain it under updates."""

    def test_end_to_end_design(self):
        rel = enrollment(UniversityConfig(students=12, seed=21))

        # 1. Discover the dependency structure from the instance.
        mvds = discover_mvds(rel)
        assert any(m.lhs == {"Student"} for m in mvds)

        # 2. The flat schema violates 4NF — the paper's motivation.
        deps = [MVD(["Student"], ["Course"])]
        assert not is_4nf(rel.schema.names, deps)

        # 3. Instead of decomposing, absorb the MVD: nest dependents
        #    first, determinant last.
        order, form = canonical_fixed_on_determinant(
            rel, MVD(["Student"], ["Course"])
        )
        assert is_fixed(form, ["Student"])
        assert form.to_1nf() == rel

        # 4. The NFR is one tuple per student (entity view).
        assert form.cardinality == len(rel.column("Student"))

        # 5. Maintain it under the Fig. 1 -> Fig. 2 style update.
        store = CanonicalNFR(rel, order, validate=True)
        victim = rel.sorted_tuples()[0]
        drops = [
            f
            for f in rel
            if f["Student"] == victim["Student"]
            and f["Course"] == victim["Course"]
        ]
        for f in drops:
            store.delete_flat(f)
        assert store.is_canonical()
        assert store.to_1nf().cardinality == rel.cardinality - len(drops)


class TestNFRVersus4NF:
    """§2/§5: the NFR absorbs the decomposition 4NF forces, with no
    information loss and fewer stored units."""

    def test_nfr_matches_4nf_decomposition_information(self):
        rel = enrollment(UniversityConfig(students=10, seed=22))
        deps = [MVD(["Student"], ["Course"])]

        # Flat route: 4NF decomposition + join to answer queries.
        result = decompose_4nf(rel.schema.names, deps)
        components = apply_decomposition(rel, result.as_sorted_lists())
        rejoined = rejoin(components)
        assert project(rejoined, rel.schema.names) == rel

        # NFR route: one nested relation, same information.
        form = canonical_form(
            rel, ["Course", "Club", "Student"]
        )
        assert form.to_1nf() == rel

        # The NFR needs fewer tuples than the two 4NF components
        # combined.
        total_flat = sum(c.cardinality for c in components)
        assert form.cardinality < total_flat

    def test_compression_report_quantifies_the_win(self):
        rel = enrollment(UniversityConfig(students=10, seed=23))
        report = compression_report(rel, ["Course", "Club", "Student"])
        assert report.tuple_ratio > 2.0
        assert report.byte_ratio > 1.0


class TestStorageQueryAgreement:
    """The realization view and the query language answer alike."""

    def test_store_and_query_language_agree(self):
        rel = enrollment(UniversityConfig(students=8, seed=24))
        order = ["Course", "Club", "Student"]
        form = canonical_form(rel, order)

        store = NFRStore.from_nfr(form)
        catalog = Catalog()
        catalog.register("E", rel, order=order)

        student = rel.sorted_tuples()[0]["Student"]
        via_store, _ = store.lookup([("Student", student)])
        via_query = run(
            f"SELECT (FLATTEN E) WHERE Student CONTAINS '{student}'",
            catalog,
        )
        assert {f.values for f in via_store} == {
            t.to_flat().values for t in via_query
        }

    def test_query_insert_visible_in_new_store(self):
        rel = enrollment(UniversityConfig(students=5, seed=25))
        catalog = Catalog()
        catalog.register("E", rel, order=["Course", "Club", "Student"])
        run("INSERT INTO E VALUES ('sNew', 'c0', 'b0')", catalog)
        updated = catalog.get("E")
        store = NFRStore.from_nfr(updated)
        found, _ = store.lookup([("Student", "sNew")])
        assert len(found) == 1


class TestSynthesisIntoNFR:
    """3NF synthesis (the paper's §3.4 precondition) feeding the NFR
    design strategy."""

    def test_synthesize_then_nest(self):
        universe = ["Emp", "Dept", "Mgr", "Skill"]
        fds = [FD(["Emp"], ["Dept"]), FD(["Dept"], ["Mgr"])]
        result = synthesize_3nf(universe, fds)
        flags = verify_synthesis(universe, fds, result)
        assert all(flags.values())

        # Build an instance of the Emp-Dept component and nest it on the
        # FD determinant.
        rows = [
            ("e1", "d1"),
            ("e2", "d1"),
            ("e3", "d2"),
        ]
        emp_dept = Relation.from_rows(["Emp", "Dept"], rows)
        order, form = canonical_fixed_on_determinant(
            emp_dept, FD(["Emp"], ["Dept"])
        )
        assert is_fixed(form, ["Emp"])
        assert form.to_1nf() == emp_dept
