"""Tests for repro.dependencies.fd."""

import pytest

from repro.dependencies.fd import FunctionalDependency as FD
from repro.errors import DependencyError
from repro.relational.relation import Relation


class TestConstruction:
    def test_parse(self):
        fd = FD.parse("A, B -> C, D")
        assert fd.lhs == {"A", "B"}
        assert fd.rhs == {"C", "D"}

    def test_parse_without_arrow_rejected(self):
        with pytest.raises(DependencyError):
            FD.parse("A B C")

    def test_empty_sides_rejected(self):
        with pytest.raises(DependencyError):
            FD([], ["A"])
        with pytest.raises(DependencyError):
            FD(["A"], [])

    def test_bad_attribute_rejected(self):
        with pytest.raises(DependencyError):
            FD([""], ["A"])

    def test_value_equality_and_hash(self):
        assert FD(["A"], ["B"]) == FD(["A"], ["B"])
        assert len({FD(["A"], ["B"]), FD(["A"], ["B"])}) == 1

    def test_str(self):
        assert str(FD(["B", "A"], ["C"])) == "A, B -> C"


class TestStructure:
    def test_trivial(self):
        assert FD(["A", "B"], ["A"]).is_trivial()
        assert not FD(["A"], ["B"]).is_trivial()

    def test_nontrivial_part(self):
        fd = FD(["A"], ["A", "B"])
        assert fd.nontrivial_part() == FD(["A"], ["B"])
        assert FD(["A"], ["A"]).nontrivial_part() is None

    def test_split(self):
        parts = FD(["A"], ["B", "C"]).split()
        assert FD(["A"], ["B"]) in parts
        assert FD(["A"], ["C"]) in parts
        assert len(parts) == 2

    def test_attributes(self):
        assert FD(["A"], ["B"]).attributes == {"A", "B"}

    def test_rename(self):
        assert FD(["A"], ["B"]).rename({"A": "X"}) == FD(["X"], ["B"])


class TestHoldsIn:
    def test_holds(self):
        r = Relation.from_rows(
            ["A", "B"], [("a1", "b1"), ("a2", "b2"), ("a1", "b1")]
        )
        assert FD(["A"], ["B"]).holds_in(r)

    def test_violated(self):
        r = Relation.from_rows(["A", "B"], [("a1", "b1"), ("a1", "b2")])
        assert not FD(["A"], ["B"]).holds_in(r)

    def test_composite_lhs(self):
        r = Relation.from_rows(
            ["A", "B", "C"],
            [("a", "b", "c1"), ("a", "b2", "c2"), ("a2", "b", "c3")],
        )
        assert FD(["A", "B"], ["C"]).holds_in(r)

    def test_unknown_attribute_rejected(self):
        r = Relation.from_rows(["A"], [("a",)])
        with pytest.raises(Exception):
            FD(["Z"], ["A"]).holds_in(r)
