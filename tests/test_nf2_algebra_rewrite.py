"""Tests for repro.nf2_algebra.rewrite — the optimizer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nfr_relation import NFRelation
from repro.nf2_algebra.operators import (
    EvalStats,
    Join,
    Nest,
    Project,
    Scan,
    Select,
    Union,
    Unnest,
    component_eq,
    contains,
)
from repro.nf2_algebra.rewrite import optimize
from repro.relational.relation import Relation


def make_scan(rows=None):
    rows = rows or [
        ("s1", "c1", "b1"),
        ("s1", "c2", "b1"),
        ("s2", "c1", "b2"),
        ("s2", "c3", "b2"),
    ]
    rel = Relation.from_rows(["Student", "Course", "Club"], rows)
    return Scan(NFRelation.from_1nf(rel), name="E")


class TestRules:
    def test_unnest_of_nest_eliminated(self):
        scan = make_scan()
        tree = Unnest(Nest(scan, "Course"), "Course")
        optimized = optimize(tree)
        assert optimized is scan

    def test_unnest_of_nest_kept_when_not_flat(self):
        scan = make_scan()
        # input to the inner Nest is already nested on Course, so the
        # static flatness test fails for a different attribute pairing
        tree = Unnest(Nest(Nest(scan, "Course"), "Course"), "Course")
        optimized = optimize(tree)
        # inner Nest(scan) is flat on Course, so one level is still
        # eliminable; check semantics preserved regardless
        assert optimized.evaluate() == tree.evaluate()

    def test_selection_pushed_below_nest(self):
        scan = make_scan()
        tree = Select(Nest(scan, "Course"), contains("Club", "b1"))
        optimized = optimize(tree)
        assert isinstance(optimized, Nest)
        assert isinstance(optimized.source, Select)

    def test_selection_not_pushed_when_touching_nest_attr(self):
        scan = make_scan()
        tree = Select(Nest(scan, "Course"), contains("Course", "c1"))
        optimized = optimize(tree)
        assert isinstance(optimized, Select)  # unchanged shape

    def test_selection_not_pushed_when_not_atom_stable(self):
        scan = make_scan()
        tree = Select(
            Nest(scan, "Course"), component_eq("Club", ["b1"])
        )
        optimized = optimize(tree)
        assert isinstance(optimized, Select)

    def test_projections_merged(self):
        scan = make_scan()
        tree = Project(
            Project(scan, ("Student", "Course")), ("Student",)
        )
        optimized = optimize(tree)
        assert isinstance(optimized, Project)
        assert isinstance(optimized.source, Scan)

    def test_selection_pushed_into_join_left(self):
        scan = make_scan()
        left = Project(scan, ("Student", "Course"))
        right = Project(scan, ("Student", "Club"))
        tree = Select(Join(left, right), contains("Course", "c1"))
        optimized = optimize(tree)
        assert isinstance(optimized, Join)
        assert isinstance(optimized.left, Select)

    def test_selection_pushed_into_join_right_only_attrs(self):
        scan = make_scan()
        left = Project(scan, ("Student", "Course"))
        right = Project(scan, ("Student", "Club"))
        tree = Select(Join(left, right), contains("Club", "b1"))
        optimized = optimize(tree)
        assert isinstance(optimized, Join)
        assert isinstance(optimized.right, Select)

    def test_selection_distributed_over_union(self):
        scan = make_scan()
        tree = Select(Union(scan, scan), contains("Club", "b1"))
        optimized = optimize(tree)
        assert isinstance(optimized, Union)
        assert isinstance(optimized.left, Select)
        assert isinstance(optimized.right, Select)


class TestSemanticsPreserved:
    def test_pushdown_preserves_results(self):
        scan = make_scan()
        tree = Select(Nest(scan, "Course"), contains("Club", "b1"))
        assert optimize(tree).evaluate() == tree.evaluate()

    def test_join_pushdown_preserves_results(self):
        scan = make_scan()
        left = Project(scan, ("Student", "Course"))
        right = Project(scan, ("Student", "Club"))
        tree = Select(Join(left, right), contains("Course", "c1"))
        assert optimize(tree).evaluate() == tree.evaluate()

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2), st.integers(0, 2), st.integers(0, 2)
            ),
            min_size=1,
            max_size=8,
        ),
        st.integers(0, 2),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_trees_preserved(self, rows, needle):
        rel = Relation.from_rows(["A", "B", "C"], rows)
        scan = Scan(NFRelation.from_1nf(rel))
        tree = Select(
            Nest(Nest(scan, "A"), "B"), contains("C", needle)
        )
        assert optimize(tree).evaluate() == tree.evaluate()


class TestCostImprovement:
    def test_pushdown_reduces_materialised_tuples(self):
        # make the selection selective so pushdown pays
        rows = [
            (f"s{i}", f"c{j}", "b1" if i == 0 else f"b{i}")
            for i in range(12)
            for j in range(4)
        ]
        scan = make_scan(rows)
        tree = Select(Nest(scan, "Course"), contains("Club", "b1"))
        optimized = optimize(tree)

        naive_stats, smart_stats = EvalStats(), EvalStats()
        naive = tree.evaluate(naive_stats)
        smart = optimized.evaluate(smart_stats)
        assert naive == smart
        assert (
            smart_stats.tuples_materialised
            < naive_stats.tuples_materialised
        )
