"""Tests for repro.core.canonical (Definition 5, Theorem 2)."""

import random

import pytest

from repro.core.canonical import (
    all_canonical_forms,
    canonical_form,
    canonical_form_randomized,
    canonical_orders_matching,
    distinct_canonical_forms,
    is_canonical,
    is_canonical_for,
    minimum_canonical_form,
)
from repro.core.irreducible import is_irreducible
from repro.core.nfr_relation import NFRelation
from repro.errors import NFRError
from repro.relational.relation import Relation


class TestCanonicalForm:
    def test_accepts_1nf_or_nfr(self, small_ab):
        via_flat = canonical_form(small_ab, ["A", "B"])
        via_nfr = canonical_form(NFRelation.from_1nf(small_ab), ["A", "B"])
        assert via_flat == via_nfr

    def test_preserves_r_star(self, small_ab):
        assert canonical_form(small_ab, ["B", "A"]).to_1nf() == small_ab

    def test_requires_permutation(self, small_ab):
        with pytest.raises(NFRError):
            canonical_form(small_ab, ["A"])

    def test_canonical_forms_are_irreducible(self, small_ab):
        for order in (["A", "B"], ["B", "A"]):
            assert is_irreducible(canonical_form(small_ab, order))

    def test_product_composes_to_single_tuple(self, product_abc):
        for order in (["A", "B", "C"], ["C", "A", "B"]):
            assert canonical_form(product_abc, order).cardinality == 1

    def test_empty_relation(self, ab_schema):
        empty = Relation(ab_schema)
        assert canonical_form(empty, ["A", "B"]).cardinality == 0


class TestTheorem2:
    """V_P(R) is independent of the composition order inside nests."""

    def test_randomized_equals_grouped(self, small_ab):
        expected = canonical_form(small_ab, ["A", "B"])
        for seed in range(8):
            got = canonical_form_randomized(
                small_ab, ["A", "B"], random.Random(seed)
            )
            assert got == expected

    def test_on_three_attributes(self):
        from repro.workloads.paper_examples import EXAMPLE2_R3

        expected = canonical_form(EXAMPLE2_R3, ["B", "A", "C"])
        for seed in range(5):
            got = canonical_form_randomized(
                EXAMPLE2_R3, ["B", "A", "C"], random.Random(seed)
            )
            assert got == expected


class TestEnumeration:
    def test_all_forms_has_factorial_entries(self, small_ab):
        forms = all_canonical_forms(small_ab)
        assert len(forms) == 2  # 2! orders

    def test_distinct_forms_grouping(self, product_abc):
        groups = distinct_canonical_forms(product_abc)
        # A full product nests to the same single tuple under all orders.
        assert len(groups) == 1
        assert sum(len(v) for v in groups.values()) == 6

    def test_minimum_canonical(self, small_ab):
        order, form = minimum_canonical_form(small_ab)
        assert form.cardinality == 2
        assert order == ("A", "B")  # vA then vB gives the 2-tuple form


class TestRecognition:
    def test_is_canonical_for(self, small_ab):
        form = canonical_form(small_ab, ["A", "B"])
        assert is_canonical_for(form, ["A", "B"])
        assert not is_canonical_for(form, ["B", "A"])

    def test_canonical_orders_matching(self, small_ab):
        form = canonical_form(small_ab, ["A", "B"])
        assert ("A", "B") in set(canonical_orders_matching(form))

    def test_is_canonical_true_and_false(self):
        from repro.workloads.paper_examples import (
            EXAMPLE2_R3,
            EXAMPLE2_R4,
            EXAMPLE2_RB,
        )

        assert is_canonical(EXAMPLE2_RB)
        # R4 is irreducible but not canonical under any order (Example 2).
        assert not is_canonical(EXAMPLE2_R4)

    def test_lifted_1nf_may_or_may_not_be_canonical(self, small_ab):
        lifted = NFRelation.from_1nf(small_ab)
        # small_ab composes under both orders, so its lifted form is not
        # canonical for either.
        assert not is_canonical(lifted)
